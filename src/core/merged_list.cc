#include "core/merged_list.h"

#include <algorithm>
#include <queue>

#include "text/analyzer.h"

namespace gks {
namespace {

// True if the element's tag satisfies the atom's constraint. Tags are
// stored raw ("Course"); the constraint is analyzed, so compare through
// the tag pipeline with per-tag-id memoization.
class TagConstraintMatcher {
 public:
  TagConstraintMatcher(const XmlIndex& index, const std::string& constraint)
      : index_(index), constraint_(constraint) {}

  bool Matches(DeweySpan id) {
    const NodeInfo* info = index_.nodes.Find(id);
    if (info == nullptr) return false;
    if (info->tag_id >= cache_.size()) cache_.resize(info->tag_id + 1, 0);
    char& verdict = cache_[info->tag_id];
    if (verdict == 0) {
      text::AnalyzerOptions tag_options;
      tag_options.remove_stopwords = false;
      bool match = false;
      for (const std::string& token :
           text::Analyze(index_.nodes.TagName(info->tag_id), tag_options)) {
        if (token == constraint_) {
          match = true;
          break;
        }
      }
      verdict = match ? 1 : -1;
    }
    return verdict == 1;
  }

 private:
  const XmlIndex& index_;
  const std::string& constraint_;
  std::vector<char> cache_;  // 0 unknown, 1 match, -1 mismatch
};

}  // namespace

PackedIds AtomOccurrences(const XmlIndex& index, const QueryAtom& atom) {
  PackedIds out;
  std::vector<const PostingList*> lists;
  for (const std::string& term : atom.terms) {
    const PostingList* list = index.inverted.Find(term);
    if (list == nullptr) return out;  // some token never occurs
    lists.push_back(list);
  }
  const PostingList* smallest = *std::min_element(
      lists.begin(), lists.end(),
      [](const PostingList* a, const PostingList* b) {
        return a->size() < b->size();
      });

  TagConstraintMatcher matcher(index, atom.tag_constraint);
  for (size_t i = 0; i < smallest->size(); ++i) {
    DeweySpan id = smallest->At(i);
    bool in_all = true;
    for (const PostingList* list : lists) {
      if (list == smallest) continue;
      size_t pos = list->SubtreeBegin(id);
      if (pos >= list->size() || list->At(pos).Compare(id) != 0) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    if (!atom.tag_constraint.empty() && !matcher.Matches(id)) continue;
    out.Add(id);
  }
  return out;
}

MergedList MergedList::Build(const XmlIndex& index, const Query& query) {
  MergedList out;
  std::vector<PackedIds> lists;
  lists.reserve(query.size());
  for (const QueryAtom& atom : query.atoms()) {
    lists.push_back(AtomOccurrences(index, atom));
  }
  for (size_t i = 0; i < lists.size(); ++i) {
    out.atom_list_sizes_.push_back(lists[i].size());
    if (lists[i].size() > 0) out.present_atoms_ |= 1ull << i;
  }

  // K-way merge with a min-heap of (list, position) cursors.
  struct Cursor {
    uint32_t list;
    size_t pos;
  };
  auto greater = [&lists](const Cursor& a, const Cursor& b) {
    int cmp = lists[a.list].At(a.pos).Compare(lists[b.list].At(b.pos));
    if (cmp != 0) return cmp > 0;
    return a.list > b.list;  // deterministic tie-break for equal ids
  };
  std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap(
      greater);
  for (uint32_t i = 0; i < lists.size(); ++i) {
    if (lists[i].size() > 0) heap.push(Cursor{i, 0});
  }
  while (!heap.empty()) {
    Cursor top = heap.top();
    heap.pop();
    out.ids_.Add(lists[top.list].At(top.pos));
    out.atoms_.push_back(top.list);
    if (top.pos + 1 < lists[top.list].size()) {
      heap.push(Cursor{top.list, top.pos + 1});
    }
  }
  return out;
}

uint64_t MergedList::MaskOfRange(size_t begin, size_t end) const {
  uint64_t mask = 0;
  for (size_t i = begin; i < end; ++i) mask |= 1ull << atoms_[i];
  return mask;
}

uint64_t MergedList::SubtreeMask(DeweySpan prefix) const {
  auto [begin, end] = SubtreeRange(prefix);
  return MaskOfRange(begin, end);
}

}  // namespace gks
