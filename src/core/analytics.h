#ifndef GKS_CORE_ANALYTICS_H_
#define GKS_CORE_ANALYTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/lce.h"
#include "index/xml_index.h"

namespace gks {

/// Faceted / aggregate analytics over a GKS query response — the paper's
/// concluding research direction ("extend GKS to enable analytics over raw
/// XML data"). All computations are driven by the same attribute directory
/// DI uses: the values owned by the response's LCE nodes.

/// One value of a facet, with how many response nodes expose it and the
/// summed rank of those nodes.
struct FacetBucket {
  std::string value;
  uint32_t count = 0;
  double rank_mass = 0.0;
};

/// All buckets for one attribute tag (e.g. facet "year" over a DBLP
/// response: {"2001": 12, "1998": 9, ...}).
struct Facet {
  std::string tag;
  std::vector<FacetBucket> buckets;  // sorted by count desc
};

struct FacetOptions {
  size_t max_facets = 8;
  size_t max_buckets_per_facet = 10;
  /// Same safety valve as DI discovery.
  size_t max_attrs_per_node = 100000;
};

/// Groups the attribute values owned by the response's LCE nodes by tag.
std::vector<Facet> ComputeFacets(const XmlIndex& index,
                                 const std::vector<GksNode>& nodes,
                                 const FacetOptions& options = {});

/// Aggregate statistics over the numeric values of one attribute tag among
/// the response's LCE nodes (e.g. AVG(year) of the matching articles).
struct NumericSummary {
  uint64_t count = 0;   // values that parsed as numbers
  uint64_t skipped = 0; // values that did not
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double sum = 0.0;
};

/// Fails with NotFound if `tag` names no attribute in the response.
Result<NumericSummary> AggregateNumeric(const XmlIndex& index,
                                        const std::vector<GksNode>& nodes,
                                        std::string_view tag);

/// Equi-width histogram over a numeric attribute of the response.
struct HistogramBucket {
  double lo = 0.0;
  double hi = 0.0;
  uint64_t count = 0;
};

Result<std::vector<HistogramBucket>> NumericHistogram(
    const XmlIndex& index, const std::vector<GksNode>& nodes,
    std::string_view tag, size_t buckets);

}  // namespace gks

#endif  // GKS_CORE_ANALYTICS_H_
