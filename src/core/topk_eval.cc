#include "core/topk_eval.h"

#include <algorithm>
#include <memory>

#include "common/metrics.h"
#include "common/trace.h"
#include "core/merged_list.h"
#include "core/window_scan.h"
#include "index/posting_cursor.h"

namespace gks {
namespace {

// Top-k instruments (docs/OBSERVABILITY.md). `blocks_skipped_total` is the
// acceptance signal: posting blocks the evaluator bypassed without
// decoding — the work a full evaluation would have paid.
struct TopKMetrics {
  Counter* queries;
  Counter* segments;
  Counter* pruned_sparse;
  Counter* pruned_bound;
  Counter* blocks_skipped;
  Counter* docs_skipped;

  static const TopKMetrics& Get() {
    static const TopKMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return TopKMetrics{
          r.GetCounter("gks.search.topk.queries_total"),
          r.GetCounter("gks.search.topk.segments_total"),
          r.GetCounter("gks.search.topk.segments_pruned_sparse_total"),
          r.GetCounter("gks.search.topk.segments_pruned_bound_total"),
          r.GetCounter("gks.search.topk.blocks_skipped_total"),
          r.GetCounter("gks.search.topk.docs_skipped_total"),
      };
    }();
    return metrics;
  }
};

// The searcher's final sort order ("a ranks strictly before b"). Total:
// Dewey ids are unique, so the id tie-break never leaves equals.
bool Better(const GksNode& a, const GksNode& b) {
  if (a.rank != b.rank) return a.rank > b.rank;
  if (a.keyword_count != b.keyword_count) {
    return a.keyword_count > b.keyword_count;
  }
  return a.id < b.id;
}

// Per-atom evaluation state: one cursor per token list, driven by the
// smallest (the atom's occurrences are a subset of every token list, so
// the driver's head document bounds where the atom can occur next).
struct AtomState {
  std::vector<PostingCursor> cursors;
  const PostingList* driver_list = nullptr;
  size_t driver = 0;           // index into cursors
  bool exists = false;         // every token list present in the index
  bool constrained = false;    // tag constraint or phrase: filter per id
  std::unique_ptr<TagConstraintMatcher> matcher;
  PackedIds occurrences;       // current segment's atom occurrences
};

// Document component of a cursor's current head (the head must exist).
uint32_t HeadDoc(const PostingCursor& cursor) {
  DeweySpan head = cursor.Head();
  return head.size > 0 ? head.data[0] : 0;
}

// Document component of a block's last id.
uint32_t BlockLastDoc(const PostingCursor& cursor, size_t b) {
  DeweySpan last = cursor.BlockLast(b);
  return last.size > 0 ? last.data[0] : 0;
}

// Largest per-occurrence rank weight the driver list can contribute in
// documents [current, doc_end): the max block-max weight over the blocks
// that overlap that document range. Without a rank_bounds section the
// unconditional bound 1.0 applies. The driver list over-approximates the
// atom (occurrences are a subset of it), so this is an upper bound on the
// atom's per-occurrence weight too.
double MaxWeightBelowDoc(const PostingCursor& cursor,
                         const std::vector<BlockRankBound>& bounds,
                         uint32_t doc_end) {
  if (bounds.empty()) return 1.0;
  size_t b = cursor.block_index();
  double weight = bounds[b].weight();
  // Ids of later blocks can still fall below doc_end (a document may span
  // blocks); extend while a block starts inside the window.
  while (b + 1 < bounds.size() && weight < 1.0 &&
         cursor.BlockFirst(b + 1).data[0] < doc_end) {
    ++b;
    weight = std::max(weight, bounds[b].weight());
  }
  return weight;
}

// Advances `cursor` to the first id at or past document `doc_end`, jumping
// whole undecoded blocks via the skip table. Returns the number of blocks
// bypassed without decoding their remainder.
uint64_t SkipCursorToDoc(PostingCursor* cursor, uint32_t doc_end) {
  uint64_t skipped = 0;
  while (!cursor->AtEnd()) {
    const size_t b = cursor->block_index();
    if (BlockLastDoc(*cursor, b) >= doc_end) break;
    cursor->SeekPastBlock(b);
    ++skipped;
  }
  if (!cursor->AtEnd()) {
    DeweySpan target{&doc_end, 1};
    cursor->SeekLowerBound(target);
  }
  return skipped;
}

// Appends the atom's occurrences inside document `doc` to state->
// occurrences, advancing every cursor past the document. Mirrors
// AtomOccurrencesInto (same candidate order, same checks), restricted to
// one document — which is exactly why the per-segment pipeline reproduces
// the full pipeline's entries for that document.
void EmitDocOccurrences(AtomState* state, uint32_t doc) {
  const uint32_t doc_end = doc + 1;
  PostingCursor& driver = state->cursors[state->driver];
  if (!state->constrained) {
    driver.EmitWhileDocBelow(doc_end, &state->occurrences);
    return;
  }
  for (; !driver.AtEnd(); driver.Next()) {
    DeweySpan id = driver.Head();
    if (id.size == 0 || id.data[0] >= doc_end) break;
    bool in_all = true;
    for (size_t l = 0; l < state->cursors.size(); ++l) {
      if (l == state->driver) continue;
      state->cursors[l].SeekLowerBound(id);
      if (state->cursors[l].AtEnd() ||
          state->cursors[l].Head().Compare(id) != 0) {
        in_all = false;
        break;
      }
    }
    if (!in_all) continue;
    if (state->matcher != nullptr && !state->matcher->Matches(id)) continue;
    state->occurrences.Add(id);
  }
}

}  // namespace

TopKResult EvaluateTopK(const XmlIndex& index, const Query& query, uint32_t s,
                        uint32_t k, QueryArena* arena) {
  TopKResult result;
  const TopKMetrics& metrics = TopKMetrics::Get();
  metrics.queries->Increment();

  const size_t n = query.size();
  std::vector<AtomState> atoms(n);
  for (size_t i = 0; i < n; ++i) {
    const QueryAtom& atom = query.atoms()[i];
    AtomState& state = atoms[i];
    std::vector<const PostingList*> lists;
    bool all = true;
    for (const std::string& term : atom.terms) {
      const PostingList* list = index.inverted.Find(term);
      if (list == nullptr) {
        all = false;
        break;
      }
      lists.push_back(list);
    }
    if (!all) continue;
    state.exists = true;
    state.constrained =
        lists.size() > 1 || !atom.tag_constraint.empty();
    if (!atom.tag_constraint.empty()) {
      state.matcher =
          std::make_unique<TagConstraintMatcher>(index, atom.tag_constraint);
    }
    state.cursors.reserve(lists.size());
    for (const PostingList* list : lists) state.cursors.emplace_back(*list);
    state.driver = 0;
    for (size_t l = 1; l < lists.size(); ++l) {
      if (lists[l]->size() < lists[state.driver]->size()) state.driver = l;
    }
    state.driver_list = lists[state.driver];
    state.occurrences = arena != nullptr ? arena->TakeIds() : PackedIds();
  }

  // Bounded top-k heap ordered by the searcher's sort; the front is the
  // WORST kept node, whose rank is the pruning threshold theta.
  std::vector<GksNode> heap;
  heap.reserve(k);

  std::vector<const PackedIds*> parts(n, nullptr);
  std::vector<size_t> part_sizes(n, 0);
  PackedIds empty_part;

  std::vector<uint32_t> active;  // atoms in the current segment (M)
  active.reserve(n);

  {
    ScopedSpan scan_span("topk.scan");
    while (true) {
      // Current document d: the smallest driver head. Atoms whose driver
      // already sits in d form the segment set M; everything else cannot
      // occur before its own head document.
      bool any = false;
      uint32_t d = 0;
      for (AtomState& state : atoms) {
        if (!state.exists || state.cursors[state.driver].AtEnd()) continue;
        uint32_t doc = HeadDoc(state.cursors[state.driver]);
        if (!any || doc < d) d = doc;
        any = true;
      }
      if (!any) break;

      active.clear();
      // The skip window [d, d_end): bounded by the first document some
      // OTHER atom could enter (its driver head) and by how far each
      // active driver's current block reaches — beyond its block end the
      // block-max bound says nothing without touching the next block's
      // skip entry, which MaxWeightBelowDoc does only when needed.
      uint32_t d_end = ~0u;
      for (uint32_t i = 0; i < n; ++i) {
        AtomState& state = atoms[i];
        if (!state.exists || state.cursors[state.driver].AtEnd()) continue;
        PostingCursor& driver = state.cursors[state.driver];
        if (HeadDoc(driver) == d) {
          active.push_back(i);
          uint32_t block_end = BlockLastDoc(driver, driver.block_index());
          if (block_end != ~0u && block_end + 1 < d_end) {
            d_end = block_end + 1;
          }
        } else {
          d_end = std::min(d_end, HeadDoc(driver));
        }
      }
      ++result.stats.segments;

      // Sparse skip: fewer than s atoms can occur anywhere in [d, d_end),
      // so no node there reaches s distinct keywords.
      bool skip = active.size() < s;
      bool bound_skip = false;
      if (!skip && heap.size() >= k) {
        // Bound skip: every node in [d, d_end) sees at most |M| distinct
        // atoms (potential P <= |M|) and each atom contributes at most
        // P * W_a, W_a the max block weight its driver overlaps — so
        // rank <= |M| * sum W_a. Strictly below theta means strictly
        // below every kept node: safe to drop, ties survive.
        double weight_sum = 0.0;
        for (uint32_t i : active) {
          AtomState& state = atoms[i];
          weight_sum += MaxWeightBelowDoc(state.cursors[state.driver],
                                          state.driver_list->rank_bounds(),
                                          d_end);
        }
        const double bound = static_cast<double>(active.size()) * weight_sum;
        if (bound < heap.front().rank) {
          skip = true;
          bound_skip = true;
        }
      }

      if (skip) {
        if (bound_skip) {
          ++result.stats.segments_pruned_bound;
        } else {
          ++result.stats.segments_pruned_sparse;
        }
        result.stats.docs_skipped += d_end - d;
        for (uint32_t i : active) {
          AtomState& state = atoms[i];
          result.stats.blocks_skipped +=
              SkipCursorToDoc(&state.cursors[state.driver], d_end);
        }
        continue;
      }

      // Evaluate document d through the exact full pipeline, restricted
      // to this document's occurrences. The per-atom lists are positioned
      // by query atom index so merge tie-breaks, masks and ranks match
      // the full merged list entry for entry. Stage spans of the inner
      // pipeline are recorded into a discarded per-segment collector —
      // thousands of per-document span trees would drown the query trace.
      uint64_t produced = 0;
      {
        TraceCollector discard;
        for (uint32_t i : active) {
          atoms[i].occurrences.Clear();
          EmitDocOccurrences(&atoms[i], d);
        }
        for (uint32_t i = 0; i < n; ++i) {
          parts[i] = &empty_part;
          part_sizes[i] = 0;
        }
        for (uint32_t i : active) {
          parts[i] = &atoms[i].occurrences;
          part_sizes[i] = atoms[i].occurrences.size();
        }
        MergedList sl = MergedList::FromParts(parts, part_sizes, arena);
        result.merged_list_size += sl.size();
        std::vector<LcpCandidate> candidates = ComputeLcpCandidates(sl, s);
        result.candidate_count += candidates.size();
        if (!candidates.empty()) {
          std::vector<GksNode> nodes =
              ComputeGksNodes(index, sl, candidates);
          produced = nodes.size();
          for (GksNode& node : nodes) {
            if (heap.size() < k) {
              heap.push_back(std::move(node));
              std::push_heap(heap.begin(), heap.end(), Better);
            } else if (Better(node, heap.front())) {
              std::pop_heap(heap.begin(), heap.end(), Better);
              heap.back() = std::move(node);
              std::push_heap(heap.begin(), heap.end(), Better);
            }
          }
        }
        sl.ReleaseTo(arena);
      }
      scan_span.AddItems(produced);
    }
  }

  {
    ScopedSpan span("topk.finalize");
    std::sort_heap(heap.begin(), heap.end(), Better);
    result.nodes = std::move(heap);
    span.AddItems(result.nodes.size());
  }

  if (arena != nullptr) {
    for (AtomState& state : atoms) {
      if (state.exists) arena->PutIds(std::move(state.occurrences));
    }
  }

  metrics.segments->Add(result.stats.segments);
  metrics.pruned_sparse->Add(result.stats.segments_pruned_sparse);
  metrics.pruned_bound->Add(result.stats.segments_pruned_bound);
  metrics.blocks_skipped->Add(result.stats.blocks_skipped);
  metrics.docs_skipped->Add(result.stats.docs_skipped);
  return result;
}

}  // namespace gks
