#ifndef GKS_CORE_PLAN_H_
#define GKS_CORE_PLAN_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace gks {

/// Execution strategy for one query. `kAuto` lets the planner pick from
/// per-term posting-list statistics; the other three force a strategy
/// (CLI `--plan=`, wire field "plan"). After planning, the chosen
/// strategy is never kAuto.
enum class PlanMode : uint8_t {
  kAuto = 0,
  kMerge,   // full k-way merge of every posting list (PR 2 kernel)
  kProbe,   // anchor-probe: seek-driven, decodes only touched blocks
  kHybrid,  // probe, but small non-anchor lists are materialized eagerly
};

/// Canonical lowercase name ("auto", "merge", "probe", "hybrid").
const char* PlanModeName(PlanMode mode);

/// Parses a plan name (as accepted by --plan / the wire "plan" field).
/// Returns false on anything else; `*out` is untouched then.
bool ParsePlanMode(std::string_view text, PlanMode* out);

/// Per-atom posting-list statistics the planner decided from (and the
/// per-atom facts --explain-json reports).
struct PlanAtomStats {
  std::string keyword;    // the atom as typed (quotes removed)
  uint64_t postings = 0;  // document frequency |S_i|
  uint64_t blocks = 0;    // encoded v2 blocks (0 = eager storage)
  uint32_t doc_span = 0;  // documents between first and last posting
  bool anchor = false;    // selected into the probe anchor set
  bool estimated = false; // phrase/tag atom: `postings` is the raw bound
};

/// Default disengage floor for the top-k axis: when the planner's anchor
/// postings — an upper bound on the candidate count, since every valid
/// window intersects the anchor set by pigeonhole — do not exceed this,
/// the block-max segment loop has nothing worth skipping and full scoring
/// plus truncation is cheaper (the evaluator's per-segment bookkeeping
/// showed up as a 0.5-0.6x regression on skewed queries; see
/// docs/PERFORMANCE.md). SearchOptions::topk_scan_floor overrides it.
inline constexpr uint64_t kTopKFullScanPostings = 4096;

/// The top-k axis of a plan: orthogonal to the strategy choice. When
/// engaged (`--top-k` > 0 on a non-empty query whose anchor postings
/// exceed the scan floor) the block-max evaluator replaces the full
/// evaluation pipeline — for any strategy, since every strategy returns
/// identical nodes — and fills the work counters after execution. When
/// `k > 0` but disengaged, the chosen strategy runs in full and the
/// searcher truncates the ranked nodes to k, which is byte-identical.
/// Either way, results equal full evaluation truncated to the k best.
struct PlanTopK {
  uint32_t k = 0;        // requested result bound (0 = full evaluation)
  bool engaged = false;  // block-max evaluator ran instead of the strategy
  std::string reason;    // one-line explanation (why engaged / why not)

  // Filled after execution (see TopKStats).
  uint64_t segments = 0;
  uint64_t segments_pruned_sparse = 0;
  uint64_t segments_pruned_bound = 0;
  uint64_t blocks_skipped = 0;
  uint64_t docs_skipped = 0;
};

/// The chosen plan plus everything needed to explain it: heuristic
/// inputs, the decision, and (after execution) probe-side work counters.
struct PlanInfo {
  PlanMode requested = PlanMode::kAuto;  // what the caller asked for
  PlanMode strategy = PlanMode::kMerge;  // what actually ran
  std::string reason;                    // one-line heuristic explanation

  uint64_t largest_postings = 0;  // max |S_i| over the atoms
  uint64_t anchor_postings = 0;   // summed sizes of the anchor set
  double skew = 0.0;              // largest / max(1, anchor_postings)

  // Filled by the probe evaluator after execution (0 on merge).
  uint64_t probe_events = 0;       // window end events evaluated
  uint64_t gathered_postings = 0;  // reduced-S_L entries materialized

  /// Top-k early-termination axis (composes with any strategy).
  PlanTopK topk;

  std::vector<PlanAtomStats> atoms;
};

}  // namespace gks

#endif  // GKS_CORE_PLAN_H_
