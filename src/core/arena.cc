#include "core/arena.h"

#include "common/metrics.h"

namespace gks {
namespace {

struct ArenaMetrics {
  Counter* reuses;
  Gauge* pooled_bytes;

  static const ArenaMetrics& Get() {
    static const ArenaMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ArenaMetrics{r.GetCounter("gks.search.arena.reuses_total"),
                          r.GetGauge("gks.search.arena.pooled_bytes")};
    }();
    return metrics;
  }
};

}  // namespace

QueryArena& QueryArena::ThreadLocal() {
  static thread_local QueryArena arena;
  return arena;
}

PackedIds QueryArena::TakeIds() {
  if (ids_.empty()) return PackedIds();
  PackedIds out = std::move(ids_.back());
  ids_.pop_back();
  ArenaMetrics::Get().reuses->Increment();
  ArenaMetrics::Get().pooled_bytes->Add(
      -static_cast<int64_t>(out.MemoryUsage()));
  return out;
}

void QueryArena::PutIds(PackedIds&& ids) {
  ids.Clear();
  ArenaMetrics::Get().pooled_bytes->Add(
      static_cast<int64_t>(ids.MemoryUsage()));
  ids_.push_back(std::move(ids));
}

std::vector<uint32_t> QueryArena::TakeU32() {
  if (u32_.empty()) return {};
  std::vector<uint32_t> out = std::move(u32_.back());
  u32_.pop_back();
  ArenaMetrics::Get().reuses->Increment();
  ArenaMetrics::Get().pooled_bytes->Add(
      -static_cast<int64_t>(out.capacity() * sizeof(uint32_t)));
  return out;
}

void QueryArena::PutU32(std::vector<uint32_t>&& v) {
  v.clear();
  ArenaMetrics::Get().pooled_bytes->Add(
      static_cast<int64_t>(v.capacity() * sizeof(uint32_t)));
  u32_.push_back(std::move(v));
}

size_t QueryArena::PooledBytes() const {
  size_t bytes = 0;
  for (const PackedIds& ids : ids_) bytes += ids.MemoryUsage();
  for (const std::vector<uint32_t>& v : u32_) {
    bytes += v.capacity() * sizeof(uint32_t);
  }
  return bytes;
}

}  // namespace gks
