#include "core/chunk.h"

#include <algorithm>
#include <map>
#include <vector>

namespace gks {
namespace {

using ComponentVec = std::vector<uint32_t>;

// Leaves to materialize: sorted unique Dewey ids within the chunk root.
std::vector<ComponentVec> CollectLeafIds(const XmlIndex& index,
                                         const MergedList& sl,
                                         DeweySpan root, size_t max_leaves) {
  std::vector<ComponentVec> leaves;

  // Matched keyword occurrences inside the subtree.
  auto [begin, end] = sl.SubtreeRange(root);
  for (size_t i = begin; i < end && leaves.size() < max_leaves; ++i) {
    DeweySpan id = sl.IdAt(i);
    leaves.emplace_back(id.data, id.data + id.size);
  }

  // Attribute leaves owned by the node (no deeper entity on the path) —
  // the context Figure 2(b) shows (course names etc.).
  auto [abegin, aend] = index.attributes.SubtreeRange(root);
  for (size_t i = abegin; i < aend && leaves.size() < max_leaves; ++i) {
    DeweySpan id = index.attributes.IdAt(i);
    bool intercepted = false;
    for (uint32_t len = id.size; len > root.size; --len) {
      const NodeInfo* info = index.nodes.Find(DeweySpan{id.data, len});
      if (info != nullptr && info->is_entity()) {
        intercepted = true;
        break;
      }
    }
    if (!intercepted) leaves.emplace_back(id.data, id.data + id.size);
  }

  std::sort(leaves.begin(), leaves.end());
  leaves.erase(std::unique(leaves.begin(), leaves.end()), leaves.end());
  return leaves;
}

}  // namespace

xml::DomDocument ChunkBuilder::Build(const GksNode& node,
                                     const Options& options) const {
  DeweySpan root_span = DeweySpan::Of(node.id);
  const NodeInfo* root_info = index_.nodes.Find(root_span);
  auto root = xml::DomNode::Element(
      root_info != nullptr ? index_.nodes.TagName(root_info->tag_id) : "node");

  std::vector<ComponentVec> leaves =
      CollectLeafIds(index_, sl_, root_span, options.max_leaves);

  // Materialize each leaf, creating intermediate elements lazily; `made`
  // maps a Dewey prefix to its DomNode.
  std::map<ComponentVec, xml::DomNode*> made;
  ComponentVec root_components(root_span.data,
                               root_span.data + root_span.size);
  made[root_components] = root.get();

  for (const ComponentVec& leaf : leaves) {
    xml::DomNode* parent = root.get();
    ComponentVec prefix = root_components;
    for (size_t depth = root_components.size(); depth <= leaf.size();
         ++depth) {
      if (depth > root_components.size()) {
        prefix.push_back(leaf[depth - 1]);
      }
      auto it = made.find(prefix);
      if (it != made.end()) {
        parent = it->second;
        continue;
      }
      const NodeInfo* info = index_.nodes.Find(
          DeweySpan{prefix.data(), static_cast<uint32_t>(prefix.size())});
      if (info == nullptr) break;  // text-position component: stop
      xml::DomNode* element =
          parent->AddChildElement(index_.nodes.TagName(info->tag_id));
      if (info->value_id != kNoValue) {
        element->AddTextChild(index_.nodes.Value(info->value_id));
      }
      made[prefix] = element;
      parent = element;
    }
  }
  return xml::DomDocument(std::move(root));
}

}  // namespace gks
