#ifndef GKS_CORE_RESULT_CACHE_H_
#define GKS_CORE_RESULT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/searcher.h"

namespace gks {

/// Sharded LRU cache of full search responses, keyed by the *normalized*
/// query text (the analyzed atom terms + tag constraints, so "XML  Data"
/// and "xml data" share an entry), the complete SearchOptions, and the
/// index epoch.
///
/// Epoch-based invalidation: every mutation of an index (IndexUpdater
/// appends) bumps `XmlIndex::epoch`, which changes every key derived from
/// that index — stale entries are never *served*; they age out of the LRU
/// instead of being eagerly purged, which keeps invalidation O(1) and
/// lock-free for writers.
///
/// Thread safety: each shard is guarded by its own mutex; Get/Put from any
/// number of threads is safe (SearchBatch workers share one cache).
/// Hits/misses/evictions feed `gks.search.cache.{hits,misses,evictions}_total`
/// (docs/OBSERVABILITY.md).
class QueryResultCache {
 public:
  /// `capacity` bounds the total number of cached responses across all
  /// shards (rounded up to a multiple of the shard count; at least one
  /// entry per shard). `shards` must be > 0.
  explicit QueryResultCache(size_t capacity, size_t shards = 8);

  QueryResultCache(const QueryResultCache&) = delete;
  QueryResultCache& operator=(const QueryResultCache&) = delete;

  /// Composes the cache key fingerprint for a normalized query against an
  /// index epoch under `options`.
  static std::string MakeKey(const std::string& normalized_query,
                             const SearchOptions& options, uint64_t epoch);

  /// Copies the cached response into `*out` and refreshes its LRU slot.
  /// False (and a miss count) when absent.
  bool Get(const std::string& key, SearchResponse* out);

  /// Inserts or refreshes `response` under `key`, evicting the shard's
  /// least-recently-used entry when full.
  void Put(const std::string& key, const SearchResponse& response);

  /// Drops every entry (tests and operational reset).
  void Clear();

  size_t capacity() const { return shards_.size() * per_shard_capacity_; }
  size_t size() const;

 private:
  struct Entry {
    std::string key;
    SearchResponse response;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<std::string, std::list<Entry>::iterator,
                       TransparentStringHash, std::equal_to<>>
        map;
  };

  Shard& ShardFor(const std::string& key);

  size_t per_shard_capacity_;
  std::vector<Shard> shards_;
};

}  // namespace gks

#endif  // GKS_CORE_RESULT_CACHE_H_
