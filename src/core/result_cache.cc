#include "core/result_cache.h"

#include "common/metrics.h"

namespace gks {
namespace {

struct CacheMetrics {
  Counter* hits;
  Counter* misses;
  Counter* evictions;

  static const CacheMetrics& Get() {
    static const CacheMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return CacheMetrics{r.GetCounter("gks.search.cache.hits_total"),
                          r.GetCounter("gks.search.cache.misses_total"),
                          r.GetCounter("gks.search.cache.evictions_total")};
    }();
    return metrics;
  }
};

void AppendField(std::string* key, uint64_t value) {
  key->push_back('\x1f');  // unit separator: cannot occur in query text
  key->append(std::to_string(value));
}

}  // namespace

QueryResultCache::QueryResultCache(size_t capacity, size_t shards)
    : per_shard_capacity_((capacity + shards - 1) / (shards == 0 ? 1 : shards)),
      shards_(shards == 0 ? 1 : shards) {
  if (per_shard_capacity_ == 0) per_shard_capacity_ = 1;
}

std::string QueryResultCache::MakeKey(const std::string& normalized_query,
                                      const SearchOptions& options,
                                      uint64_t epoch) {
  std::string key = normalized_query;
  AppendField(&key, options.s);
  AppendField(&key, options.max_results);
  AppendField(&key, options.di_top_m);
  AppendField(&key, options.discover_di ? 1 : 0);
  AppendField(&key, options.suggest_refinements ? 1 : 0);
  // Every plan returns identical nodes, but the recorded PlanInfo/trace
  // differ — a forced-plan explain must not surface another plan's entry.
  AppendField(&key, static_cast<uint64_t>(options.plan));
  // Different k means different nodes (and different DI/refinements).
  AppendField(&key, options.top_k);
  // Same nodes either side of the floor, but plan.topk.engaged/reason and
  // the recorded trace differ — keep the entries distinct.
  AppendField(&key, options.topk_scan_floor);
  AppendField(&key, epoch);
  return key;
}

QueryResultCache::Shard& QueryResultCache::ShardFor(const std::string& key) {
  size_t hash = TransparentStringHash()(key);
  return shards_[hash % shards_.size()];
}

bool QueryResultCache::Get(const std::string& key, SearchResponse* out) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it == shard.map.end()) {
    CacheMetrics::Get().misses->Increment();
    return false;
  }
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  *out = it->second->response;
  CacheMetrics::Get().hits->Increment();
  return true;
}

void QueryResultCache::Put(const std::string& key,
                           const SearchResponse& response) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.map.find(key);
  if (it != shard.map.end()) {
    it->second->response = response;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= per_shard_capacity_) {
    shard.map.erase(shard.lru.back().key);
    shard.lru.pop_back();
    CacheMetrics::Get().evictions->Increment();
  }
  shard.lru.push_front(Entry{key, response});
  shard.map.emplace(key, shard.lru.begin());
}

void QueryResultCache::Clear() {
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.lru.clear();
    shard.map.clear();
  }
}

size_t QueryResultCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    total += shard.lru.size();
  }
  return total;
}

}  // namespace gks
