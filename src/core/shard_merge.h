#ifndef GKS_CORE_SHARD_MERGE_H_
#define GKS_CORE_SHARD_MERGE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/plan.h"
#include "core/query.h"
#include "core/searcher.h"
#include "core/segment_search.h"

namespace gks {

/// Coordinator-side scatter-gather merge (docs/DISTRIBUTED.md).
///
/// Each shard worker runs the full single-index pipeline over its
/// document range with the cross-shard stages disabled (`"shard": true`
/// on the wire maps to discover_di = suggest_refinements = false,
/// max_results = 0 — exactly the inner options SegmentSearcher uses per
/// segment). The coordinator re-establishes the global order with the
/// searcher's exact (rank desc, keyword count desc, Dewey id asc)
/// comparator and replays the cross-shard stages from partition-
/// independent inputs:
///
///   - Ranks travel as exact IEEE-754 bit patterns (`rank_bits`), not the
///     3-decimal display doubles, so sort order, refinement subset scores
///     and DI weight sums are bit-identical to a single-index run.
///   - DI discovery replays per-node contribution lists (attribute tag
///     name, value string, path) in merged rank order — the same
///     accumulation DiscoverDi performs, minus any index access.
///   - Refinements derive from the merged nodes (keyword masks travel on
///     the wire) and the merged DI; SuggestRefinements is deterministic
///     in those inputs.
///
/// The property suite (tests/property/shard_equivalence_test.cc) pins the
/// whole response — ordering, ranks, DI, refinements, top-k — against the
/// single-index oracle across shard counts and backends.

/// One ranked node as a shard reported it: the engine node plus the
/// display strings and DI contributions only the owning shard can
/// resolve.
struct ShardResultNode {
  GksNode node;
  std::string doc_name;
  std::string describe;
  std::vector<DiContribution> di;
};

/// One shard's partial result.
struct ShardPartialResult {
  std::vector<ShardResultNode> nodes;  // in the shard's own rank order
  uint64_t merged_list_size = 0;
  uint64_t candidate_count = 0;
  PlanMode plan = PlanMode::kAuto;
  uint64_t epoch = 0;
};

/// The merged, client-facing result: the engine response plus the
/// per-node display strings (aligned with response.nodes).
struct MergedShardResult {
  SearchResponse response;
  std::vector<std::string> doc_names;
  std::vector<std::string> describes;
  uint64_t epoch = 0;  // max shard epoch
};

/// Merges shard partials exactly as SegmentSearcher::SearchMerged merges
/// segment partials. `options` is the client's request (s / top / top_k /
/// di / refine); partials may arrive in any order and may be fewer than
/// the full topology (degraded responses drop missing shards — the
/// caller decides whether that is acceptable).
MergedShardResult MergeShardResults(const Query& query,
                                    const SearchOptions& options,
                                    std::vector<ShardPartialResult> partials);

/// Exact double <-> wire encoding: lowercase hex of the IEEE-754 bit
/// pattern (16 digits). The display `rank` field stays the human-readable
/// 3-decimal double; these carry the lossless value.
std::string EncodeDoubleBits(double value);
bool DecodeDoubleBits(const std::string& hex, double* value);
std::string EncodeMaskBits(uint64_t mask);
bool DecodeMaskBits(const std::string& hex, uint64_t* mask);

}  // namespace gks

#endif  // GKS_CORE_SHARD_MERGE_H_
