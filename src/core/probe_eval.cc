#include "core/probe_eval.h"

#include <algorithm>
#include <array>

#include "common/metrics.h"
#include "common/simd/kernels.h"
#include "core/lce.h"
#include "index/posting_blocks.h"

namespace gks {
namespace {

struct ProbeMetrics {
  Counter* events;
  Counter* gathered;

  static const ProbeMetrics& Get() {
    static const ProbeMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      return ProbeMetrics{
          r.GetCounter("gks.search.plan.probe_events_total"),
          r.GetCounter("gks.search.plan.gathered_postings_total")};
    }();
    return metrics;
  }
};

/// Random-access boundary queries over one atom occurrence list, with two
/// backends: an eager PackedIds (materialized/borrowed lists) or a
/// BlockPostingsView whose skip table answers block-level comparisons and
/// whose payload blocks decode lazily into a small LRU. Unlike
/// PostingCursor this is not forward-only: event processing needs
/// *predecessor* lookups that move backwards between probes.
class ProbeList {
 public:
  void InitEager(const PackedIds* ids) {
    eager_ = ids;
    view_ = nullptr;
  }
  void InitBlocks(const BlockPostingsView* view) {
    view_ = view;
    eager_ = nullptr;
  }

  size_t size() const {
    if (eager_ != nullptr) return eager_->size();
    return view_ != nullptr ? view_->id_count() : 0;
  }

  /// First index with id >= / > `id` in document order.
  size_t LowerBound(DeweySpan id) { return Bound(id, Mode::kLower); }
  size_t UpperBound(DeweySpan id) { return Bound(id, Mode::kUpper); }
  /// Bounds of the contiguous subtree range of `prefix`.
  size_t SubtreeBegin(DeweySpan prefix) {
    return Bound(prefix, Mode::kSubtreeBegin);
  }
  size_t SubtreeEnd(DeweySpan prefix) { return Bound(prefix, Mode::kSubtreeEnd); }

  /// Owned copy of the id at index `i` (a span into the block cache would
  /// dangle at the next decode).
  DeweyId Get(size_t i) {
    if (eager_ != nullptr) return eager_->IdAt(i);
    size_t b = BlockOf(i);
    const PackedIds& block = *Block(b);
    size_t off = i - view_->block_id_begin(b);
    if (off >= block.size()) return DeweyId();  // decode failure: degrade
    return block.IdAt(off);
  }

  /// Appends ids [begin, end) to `out` in order. Fully-covered blocks
  /// decode straight into `out`; boundary blocks go through the cache.
  void AppendRangeTo(size_t begin, size_t end, PackedIds* out) {
    if (begin >= end) return;
    if (eager_ != nullptr) {
      out->AppendRange(*eager_, begin, end);
      return;
    }
    size_t b = BlockOf(begin);
    while (b < view_->block_count()) {
      const size_t b_begin = view_->block_id_begin(b);
      if (b_begin >= end) break;
      const size_t b_size = view_->block_size(b);
      if (begin <= b_begin && end >= b_begin + b_size) {
        (void)view_->DecodeBlock(b, out);  // whole block, no copy-through
      } else {
        const PackedIds& block = *Block(b);
        size_t from = begin > b_begin ? begin - b_begin : 0;
        size_t to = std::min(end - b_begin, block.size());
        if (to > from) out->AppendRange(block, from, to);
      }
      ++b;
    }
  }

 private:
  enum class Mode { kLower, kUpper, kSubtreeBegin, kSubtreeEnd };

  // True when `id` still sorts before the boundary the mode describes.
  static bool BeforeBoundary(DeweySpan id, DeweySpan key, Mode mode) {
    switch (mode) {
      case Mode::kLower: return id.Compare(key) < 0;
      case Mode::kUpper: return id.Compare(key) <= 0;
      case Mode::kSubtreeBegin: return id.CompareToSubtree(key) < 0;
      case Mode::kSubtreeEnd: return id.CompareToSubtree(key) <= 0;
    }
    return false;
  }

  size_t Bound(DeweySpan key, Mode mode) {
    if (eager_ != nullptr) {
      size_t lo = 0;
      size_t hi = eager_->size();
      while (lo < hi) {
        size_t mid = lo + (hi - lo) / 2;
        if (BeforeBoundary(eager_->At(mid), key, mode)) lo = mid + 1;
        else hi = mid;
      }
      return lo;
    }
    if (view_ == nullptr || view_->id_count() == 0) return 0;
    // Block-level binary search on the skip table: find the first block
    // whose last id reaches the boundary. Blocks before it lie entirely
    // below; if its first id already reaches it, no decode is needed.
    size_t lo = 0;
    size_t hi = view_->block_count();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (BeforeBoundary(view_->block_last(mid), key, mode)) lo = mid + 1;
      else hi = mid;
    }
    if (lo == view_->block_count()) return view_->id_count();
    if (!BeforeBoundary(view_->block_first(lo), key, mode)) {
      return view_->block_id_begin(lo);
    }
    const PackedIds& block = *Block(lo);
    size_t in_lo = 0;
    size_t in_hi = block.size();
    while (in_lo < in_hi) {
      size_t mid = in_lo + (in_hi - in_lo) / 2;
      if (BeforeBoundary(block.At(mid), key, mode)) in_lo = mid + 1;
      else in_hi = mid;
    }
    return view_->block_id_begin(lo) + in_lo;
  }

  // Block containing global id index `i`.
  size_t BlockOf(size_t i) const {
    size_t lo = 0;
    size_t hi = view_->block_count();
    while (hi - lo > 1) {
      size_t mid = lo + (hi - lo) / 2;
      if (view_->block_id_begin(mid) <= i) lo = mid;
      else hi = mid;
    }
    return lo;
  }

  const PackedIds* Block(size_t b) {
    for (Slot& slot : cache_) {
      if (slot.block == b) return &slot.ids;
    }
    Slot& slot = cache_[clock_++ % cache_.size()];
    slot.ids.Clear();
    slot.block = b;
    if (!view_->DecodeBlock(b, &slot.ids).ok()) slot.ids.Clear();
    return &slot.ids;
  }

  struct Slot {
    size_t block = static_cast<size_t>(-1);
    PackedIds ids;
  };

  const PackedIds* eager_ = nullptr;
  const BlockPostingsView* view_ = nullptr;
  std::array<Slot, 8> cache_;
  size_t clock_ = 0;
};

}  // namespace

/// One query atom's occurrence list inside the evaluator: either borrowed
/// from the index (eager/materialized), owned after decoding or phrase/tag
/// filtering, or left block-lazy behind the ProbeList.
struct ProbeEvaluator::AtomList {
  PackedIds owned;                           // arena scratch when active
  bool owned_active = false;
  const PackedIds* eager = nullptr;          // borrowed eager store
  const BlockPostingsView* view = nullptr;   // lazy block backend
  ProbeList probe;
  size_t size = 0;
  bool anchor = false;
};

ProbeEvaluator::ProbeEvaluator(const XmlIndex& index, const Query& query,
                               uint32_t s, const ProbeOptions& options,
                               QueryArena* arena)
    : index_(index), query_(query), s_(s), options_(options), arena_(arena) {}

ProbeEvaluator::~ProbeEvaluator() {
  if (arena_ == nullptr) return;
  for (std::unique_ptr<AtomList>& al : lists_) {
    if (al != nullptr && al->owned_active) arena_->PutIds(std::move(al->owned));
  }
}

size_t ProbeEvaluator::merged_size() const {
  size_t total = 0;
  for (size_t size : atom_sizes_) total += size;
  return total;
}

void ProbeEvaluator::PrepareLists() {
  const size_t n = query_.size();
  lists_.reserve(n);
  atom_sizes_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const QueryAtom& atom = query_.atoms()[i];
    auto al = std::make_unique<AtomList>();
    const bool constrained =
        atom.terms.size() > 1 || !atom.tag_constraint.empty();
    if (constrained) {
      // Phrase/tag atoms change list membership, so they always
      // materialize through the shared occurrence builder.
      al->owned = arena_ != nullptr ? arena_->TakeIds() : PackedIds();
      AtomOccurrencesInto(index_, atom, &al->owned);
      al->owned_active = true;
      al->size = al->owned.size();
    } else if (const PostingList* pl = index_.inverted.Find(atom.terms[0])) {
      if (pl->materialized()) {
        al->eager = &pl->materialized_ids();
      } else {
        al->view = pl->block_view();
      }
      al->size = pl->size();
    }
    atom_sizes_.push_back(al->size);
    lists_.push_back(std::move(al));
  }

  // Anchor set: the n-s+1 smallest lists (size, then atom index for
  // determinism). Every window with s unique atoms intersects it.
  std::vector<uint32_t> order(n);
  for (uint32_t i = 0; i < n; ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](uint32_t a, uint32_t b) {
    if (atom_sizes_[a] != atom_sizes_[b]) {
      return atom_sizes_[a] < atom_sizes_[b];
    }
    return a < b;
  });
  const size_t anchor_count = n >= s_ ? n - s_ + 1 : n;
  anchors_.assign(order.begin(), order.begin() + anchor_count);
  std::sort(anchors_.begin(), anchors_.end());

  auto materialize = [&](AtomList* al) {
    if (al->owned_active || al->view == nullptr) return;
    al->owned = arena_ != nullptr ? arena_->TakeIds() : PackedIds();
    (void)al->view->DecodeAll(&al->owned);
    al->owned_active = true;
    al->view = nullptr;
  };

  for (uint32_t a : anchors_) {
    AtomList& al = *lists_[a];
    al.anchor = true;
    // Anchors are iterated exhaustively anyway; decode them up front so
    // the discovery walk reads a flat array.
    materialize(&al);
    anchor_postings_ += al.size;
  }
  if (options_.materialize_below > 0) {
    for (std::unique_ptr<AtomList>& al : lists_) {
      if (!al->anchor && al->size <= options_.materialize_below) {
        materialize(al.get());
      }
    }
  }
  for (std::unique_ptr<AtomList>& al : lists_) {
    if (al->owned_active) al->probe.InitEager(&al->owned);
    else if (al->eager != nullptr) al->probe.InitEager(al->eager);
    else if (al->view != nullptr) al->probe.InitBlocks(al->view);
  }
}

void ProbeEvaluator::RunVirtualScan() {
  const size_t n = query_.size();
  if (n == 0 || s_ == 0) return;

  // Walk the anchor union in ascending (id, atom) order. For each anchor
  // occurrence, the first c-occurrence at-or-after it (for every atom c)
  // is a window end event; consecutive anchors resolving to the same
  // index dedup via last_idx (event indices ascend with the anchors).
  struct AnchorCursor {
    uint32_t atom;
    size_t pos;
    const PackedIds* store;
  };
  std::vector<AnchorCursor> cursors;
  for (uint32_t a : anchors_) {
    AtomList& al = *lists_[a];
    if (al.size == 0) continue;
    cursors.push_back(
        AnchorCursor{a, 0, al.owned_active ? &al.owned : al.eager});
  }
  std::vector<size_t> last_idx(n, static_cast<size_t>(-1));

  while (true) {
    int best = -1;
    for (size_t i = 0; i < cursors.size(); ++i) {
      if (cursors[i].pos >= cursors[i].store->size()) continue;
      if (best < 0) {
        best = static_cast<int>(i);
        continue;
      }
      int cmp = cursors[i].store->At(cursors[i].pos).Compare(
          cursors[best].store->At(cursors[best].pos));
      if (cmp < 0 || (cmp == 0 && cursors[i].atom < cursors[best].atom)) {
        best = static_cast<int>(i);
      }
    }
    if (best < 0) break;
    AnchorCursor& ac = cursors[best];
    DeweySpan a_id = ac.store->At(ac.pos);
    const uint32_t a_atom = ac.atom;

    for (uint32_t c = 0; c < n; ++c) {
      AtomList& al = *lists_[c];
      if (al.size == 0) continue;
      // First index of list c at position >= (a_id, a_atom): same-id
      // entries count only when c sorts at-or-after the anchor's atom.
      size_t idx = c >= a_atom ? al.probe.LowerBound(a_id)
                               : al.probe.UpperBound(a_id);
      if (idx >= al.size || last_idx[c] == idx) continue;
      last_idx[c] = idx;
      DeweyId id = al.probe.Get(idx);
      DeweyId prev = idx > 0 ? al.probe.Get(idx - 1) : DeweyId();
      ++events_;
      ProcessEndEvent(c, DeweySpan::Of(id), idx > 0, DeweySpan::Of(prev));
    }
    ++ac.pos;
  }

  candidates_.reserve(counts_.size());
  for (const auto& [components, count] : counts_) {
    candidates_.push_back(
        LcpCandidate{DeweyId(components), static_cast<uint32_t>(count)});
  }
  ProbeMetrics::Get().events->Add(events_);
}

void ProbeEvaluator::ProcessEndEvent(uint32_t c, DeweySpan p, bool has_prev,
                                     DeweySpan prev) {
  const size_t n = query_.size();
  // A position in S_L is the pair (id, atom); document order on the id,
  // atom index breaking ties — exactly the merge kernel's entry order.
  struct Pos {
    DeweyId id;
    uint32_t atom;
  };
  auto pos_less = [](const Pos& a, const Pos& b) {
    int cmp = DeweySpan::Of(a.id).Compare(DeweySpan::Of(b.id));
    if (cmp != 0) return cmp < 0;
    return a.atom < b.atom;
  };

  // Per other atom: the last occurrence strictly before position (p, c).
  std::vector<Pos> bounds;
  bounds.reserve(n > 0 ? n - 1 : 0);
  for (uint32_t i = 0; i < n; ++i) {
    if (i == c) continue;
    AtomList& al = *lists_[i];
    if (al.size == 0) continue;
    size_t at = i > c ? al.probe.LowerBound(p) : al.probe.UpperBound(p);
    if (at == 0) continue;
    bounds.push_back(Pos{al.probe.Get(at - 1), i});
  }
  // The window [l, p] needs s-1 other unique atoms before p.
  if (s_ >= 2 && bounds.size() < static_cast<size_t>(s_) - 1) return;
  std::sort(bounds.begin(), bounds.end(),
            [&](const Pos& a, const Pos& b) { return pos_less(b, a); });

  // Valid starts l lie in (L, M]: at-or-before the (s-1)-th largest other
  // predecessor T_{s-1} (every start in (T_s... must see s-1 others), and
  // after both the previous c-occurrence (else a later window ends here)
  // and T_s (else an s-th other atom would fit and the window would not
  // be minimal... it would end earlier). T_0 is p itself (s = 1: the
  // single-entry window [p, p]).
  Pos m;
  if (s_ == 1) {
    m = Pos{p.ToDeweyId(), c};
  } else {
    m = bounds[s_ - 2];
  }
  bool has_l = false;
  Pos l;
  if (has_prev) {
    l = Pos{prev.ToDeweyId(), c};
    has_l = true;
  }
  if (bounds.size() >= s_) {
    Pos& t = bounds[s_ - 1];
    if (!has_l || pos_less(l, t)) {
      l = t;
      has_l = true;
    }
  }
  if (has_l && !pos_less(l, m)) return;  // empty interval

  // First index of list i strictly after position x.
  auto first_after = [&](uint32_t i, const Pos& x) -> size_t {
    AtomList& al = *lists_[i];
    DeweySpan xid = DeweySpan::Of(x.id);
    return i > x.atom ? al.probe.LowerBound(xid) : al.probe.UpperBound(xid);
  };

  // Per-list bounds of the interval (L, M]; every S_L entry inside it is
  // one valid window start.
  std::vector<size_t> lo(n, 0);
  std::vector<size_t> hi(n, 0);
  uint64_t interval_total = 0;
  for (uint32_t i = 0; i < n; ++i) {
    if (lists_[i]->size == 0) continue;
    lo[i] = has_l ? first_after(i, l) : 0;
    hi[i] = first_after(i, m);
    if (hi[i] > lo[i]) interval_total += hi[i] - lo[i];
  }
  if (interval_total == 0) return;

  // lcp(start, p) has depth >= d iff start lies in subtree(p[0..d)); the
  // count with depth exactly d is the difference against depth d+1.
  // Eager-backed lists with small intervals take the dispatched linear
  // histogram kernel — one pass over the interval covers every depth at
  // once. The rest keep per-depth subtree-boundary searches, deepest
  // first, with a per-list stop once a prefix's subtree swallows that
  // list's whole interval (subtree ranges nest, so every shallower
  // prefix covers it too).
  const uint32_t depth = p.size;
  constexpr size_t kDepthScanLinearMax = 256;
  const simd::Kernels& kernels = simd::Active();
  depth_totals_.assign(depth + 1, 0);
  for (uint32_t i = 0; i < n; ++i) {
    AtomList& al = *lists_[i];
    if (al.size == 0 || hi[i] <= lo[i]) continue;
    const PackedIds* eager = al.owned_active ? &al.owned : al.eager;
    if (eager != nullptr && hi[i] - lo[i] <= kDepthScanLinearMax) {
      kernels.count_depth_prefixes(eager->raw_components(),
                                   eager->raw_offsets(), lo[i], hi[i],
                                   p.data, depth, depth_totals_.data());
      kernels.depth_calls->Increment();
      continue;
    }
    const uint64_t span = hi[i] - lo[i];
    for (uint32_t d = depth; d >= 1; --d) {
      DeweySpan q{p.data, d};
      size_t b = std::max(lo[i], al.probe.SubtreeBegin(q));
      size_t e = std::min(hi[i], al.probe.SubtreeEnd(q));
      if (e <= b) continue;
      const uint64_t inside = e - b;
      depth_totals_[d] += inside;
      if (inside == span) {
        for (uint32_t d2 = d - 1; d2 >= 1; --d2) depth_totals_[d2] += inside;
        break;
      }
    }
  }
  uint64_t deeper = 0;
  for (uint32_t d = depth; d >= 1; --d) {
    const uint64_t total = depth_totals_[d];
    if (total > deeper) {
      counts_[std::vector<uint32_t>(p.data, p.data + d)] += total - deeper;
    }
    deeper = total;
    if (total == interval_total) break;
  }
}

void ProbeEvaluator::PruneCandidates() {
  const size_t n = query_.size();
  masks_.reserve(candidates_.size());
  for (const LcpCandidate& candidate : candidates_) {
    DeweySpan span = DeweySpan::Of(candidate.node);
    uint64_t mask = 0;
    for (uint32_t i = 0; i < n; ++i) {
      AtomList& al = *lists_[i];
      if (al.size == 0) continue;
      if (al.probe.SubtreeBegin(span) < al.probe.SubtreeEnd(span)) {
        mask |= 1ull << i;
      }
    }
    masks_.push_back(mask);
  }
  pruned_ = PruneCoveredAncestorsMasked(candidates_, masks_);
}

void ProbeEvaluator::GatherReduced() {
  const size_t n = query_.size();
  // Coverage prefix per survivor: the subtree the LCE stage will read for
  // this candidate's response node — its lowest entity ancestor after the
  // attribute lift, or the lifted candidate itself when no entity exists.
  std::vector<std::vector<uint32_t>> prefixes;
  prefixes.reserve(pruned_.size());
  for (const LcpCandidate& candidate : pruned_) {
    DeweySpan span = DeweySpan::Of(candidate.node);
    std::vector<uint32_t> components(span.data, span.data + span.size);
    const NodeInfo* info = index_.nodes.Find(span);
    if (info != nullptr && info->is_attribute() && components.size() > 1) {
      components.pop_back();
    }
    DeweySpan lifted{components.data(),
                     static_cast<uint32_t>(components.size())};
    std::vector<uint32_t> entity;
    if (LowestEntityOf(index_, lifted, &entity)) {
      prefixes.push_back(std::move(entity));
    } else {
      prefixes.push_back(std::move(components));
    }
  }
  // Document order == lexicographic component order; a prefix covered by
  // the previous maximal one is redundant (anything between an ancestor
  // and its descendant in document order shares the ancestor prefix, so
  // one back-check suffices).
  std::sort(prefixes.begin(), prefixes.end());
  std::vector<std::vector<uint32_t>> maximal;
  for (std::vector<uint32_t>& prefix : prefixes) {
    if (!maximal.empty()) {
      const std::vector<uint32_t>& last = maximal.back();
      if (last.size() <= prefix.size() &&
          std::equal(last.begin(), last.end(), prefix.begin())) {
        continue;
      }
    }
    maximal.push_back(std::move(prefix));
  }

  // Reduced S_L: each atom's postings restricted to the coverage
  // subtrees, k-way merged in exact S_L entry order. Downstream masks,
  // witnesses and ranks over any response-node subtree are then identical
  // to the full merge — the entries there are the same, in the same
  // order — while everything outside the coverage stays undecoded.
  std::vector<PackedIds> gathered;
  gathered.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    gathered.push_back(arena_ != nullptr ? arena_->TakeIds() : PackedIds());
  }
  for (uint32_t i = 0; i < n; ++i) {
    AtomList& al = *lists_[i];
    if (al.size == 0) continue;
    for (const std::vector<uint32_t>& prefix : maximal) {
      DeweySpan q{prefix.data(), static_cast<uint32_t>(prefix.size())};
      al.probe.AppendRangeTo(al.probe.SubtreeBegin(q), al.probe.SubtreeEnd(q),
                             &gathered[i]);
    }
  }
  std::vector<const PackedIds*> ptrs;
  ptrs.reserve(n);
  for (uint32_t i = 0; i < n; ++i) ptrs.push_back(&gathered[i]);
  reduced_ = MergedList::FromParts(ptrs, atom_sizes_, arena_);
  if (arena_ != nullptr) {
    for (PackedIds& g : gathered) arena_->PutIds(std::move(g));
  }
  ProbeMetrics::Get().gathered->Add(reduced_.size());
}

}  // namespace gks
