#include "core/lce.h"

#include <bit>
#include <map>
#include <set>

#include "common/trace.h"
#include "core/ranking.h"

namespace gks {
namespace {

using ComponentVec = std::vector<uint32_t>;

ComponentVec ToComponents(DeweySpan span) {
  return ComponentVec(span.data, span.data + span.size);
}

}  // namespace

bool LowestEntityOf(const XmlIndex& index, DeweySpan id, ComponentVec* out) {
  for (uint32_t len = id.size; len >= 1; --len) {
    DeweySpan prefix{id.data, len};
    const NodeInfo* info = index.nodes.Find(prefix);
    if (info != nullptr && info->is_entity()) {
      *out = ToComponents(prefix);
      return true;
    }
  }
  return false;
}

std::vector<GksNode> ComputeGksNodes(const XmlIndex& index,
                                     const MergedList& sl,
                                     const std::vector<LcpCandidate>& lcps_in) {
  // SLCA-style minimality: drop ancestors whose keyword set is already
  // covered by their candidate descendants (Table 1's {x2}-not-{x1,x2,r}).
  std::vector<LcpCandidate> lcps = [&] {
    ScopedSpan span("prune");
    std::vector<LcpCandidate> pruned = PruneCoveredAncestors(sl, lcps_in);
    span.AddItems(pruned.size());
    return pruned;
  }();
  return ComputeGksNodesPruned(index, sl, lcps);
}

std::vector<GksNode> ComputeGksNodesPruned(
    const XmlIndex& index, const MergedList& sl,
    const std::vector<LcpCandidate>& lcps) {
  // Entities with an independent witness: the lowest entity ancestor of at
  // least one occurrence in S_L (Def. 2.2.1 restricted to query keywords).
  std::set<ComponentVec> witnessed;
  for (size_t i = 0; i < sl.size(); ++i) {
    ComponentVec entity;
    if (LowestEntityOf(index, sl.IdAt(i), &entity)) {
      witnessed.insert(std::move(entity));
    }
  }

  // Map each candidate to its response node; aggregate window counts for
  // candidates that converge on the same node.
  struct Agg {
    bool is_lce = false;
    uint32_t window_count = 0;
  };
  std::map<ComponentVec, Agg> nodes;
  for (const LcpCandidate& lcp : lcps) {
    DeweySpan span = DeweySpan::Of(lcp.node);
    ComponentVec components = ToComponents(span);

    // Attribute nodes cannot be meaningful response roots: lift to parent.
    const NodeInfo* info = index.nodes.Find(span);
    if (info != nullptr && info->is_attribute() && components.size() > 1) {
      components.pop_back();
      span = DeweySpan{components.data(),
                       static_cast<uint32_t>(components.size())};
    }

    ComponentVec entity;
    bool has_entity = LowestEntityOf(index, span, &entity);
    if (has_entity && witnessed.count(entity) > 0) {
      Agg& agg = nodes[entity];
      agg.is_lce = true;
      agg.window_count += lcp.window_count;
    } else {
      Agg& agg = nodes[components];
      agg.window_count += lcp.window_count;
    }
  }

  std::vector<GksNode> out;
  out.reserve(nodes.size());
  for (auto& [components, agg] : nodes) {
    GksNode node;
    node.id = DeweyId(components);
    node.is_lce = agg.is_lce;
    node.window_count = agg.window_count;
    node.keyword_mask = sl.SubtreeMask(DeweySpan::Of(node.id));
    node.keyword_count = static_cast<uint32_t>(std::popcount(node.keyword_mask));
    out.push_back(std::move(node));
  }
  {
    ScopedSpan span("ranking");
    for (GksNode& node : out) {
      node.rank = ComputePotentialFlowRank(index, sl, DeweySpan::Of(node.id),
                                           node.keyword_mask);
    }
    span.AddItems(out.size());
  }
  return out;
}

}  // namespace gks
