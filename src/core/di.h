#ifndef GKS_CORE_DI_H_
#define GKS_CORE_DI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/lce.h"
#include "core/query.h"
#include "index/xml_index.h"

namespace gks {

/// One element of the weighted keyword set S_w^Q (Sec. 6.2): an attribute
/// value exposed by the LCE nodes of the query response, its schema path
/// (tag names from the LCE down to the attribute node — the "semantics"
/// of the keyword, e.g. ip -> year -> "2001"), and its weight — the sum of
/// the ranks of every LCE node exposing it.
struct DiKeyword {
  std::string value;
  std::vector<std::string> path;
  double weight = 0.0;
  uint32_t support = 0;  // number of LCE nodes exposing the value

  /// "<year: 2001>" style rendering used by the Table 8 harness.
  std::string ToString() const;
};

struct DiOptions {
  size_t top_m = 5;
  /// Safety valve for LCE nodes with enormous attribute fan-out (e.g. a
  /// root-level response): at most this many directory entries are
  /// scanned per node.
  size_t max_attrs_per_node = 100000;
};

/// Discovers the top-m DI keywords (Def. 2.3.1) for a ranked response.
/// Attribute values containing any query keyword are excluded ("if a
/// keyword in the attribute node is part of the user query Q, it is not
/// included in the set"). Runs in O(|S_w^Q|) plus the final top-m sort.
std::vector<DiKeyword> DiscoverDi(const XmlIndex& index,
                                  const std::vector<GksNode>& nodes,
                                  const Query& query,
                                  const DiOptions& options = {});

}  // namespace gks

#endif  // GKS_CORE_DI_H_
