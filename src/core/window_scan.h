#ifndef GKS_CORE_WINDOW_SCAN_H_
#define GKS_CORE_WINDOW_SCAN_H_

#include <cstdint>
#include <vector>

#include "core/merged_list.h"
#include "dewey/dewey_id.h"

namespace gks {

/// One entry of the Longest-Common-Prefix list (Sec. 4.1, Figure 4): a
/// node that is the LCA of at least one minimal block of occurrences
/// covering `s` unique query keywords, plus the number of such blocks
/// (the paper's per-prefix counter).
struct LcpCandidate {
  DeweyId node;
  uint32_t window_count = 0;
};

/// Slides a minimal window with `s` *unique* keywords over the merged list
/// (the sU(l, r, s) loop of algorithm GKSNodes) and collects the longest
/// common prefix of each window's first and last Dewey ids (Lemma 6).
/// Candidates are returned deduplicated, in document order.
/// Runs in O(d * |S_L|).
std::vector<LcpCandidate> ComputeLcpCandidates(const MergedList& sl,
                                               uint32_t s);

/// The paper's "GKS follows the semantics of SLCA" rule: an ancestor
/// candidate that contributes no query keyword beyond the union of its
/// candidate descendants is redundant and dropped — this is exactly why
/// Table 1 reports {x2} rather than {x1, x2, r} for Q1, and why the
/// document root never swamps the response ("r is not a meaningful
/// response as it is available to the user even in the absence of any
/// query"). Candidates must be in document order; a single stack sweep
/// computes each candidate's descendant-mask union.
std::vector<LcpCandidate> PruneCoveredAncestors(
    const MergedList& sl, std::vector<LcpCandidate> candidates);

/// Same sweep, but over caller-supplied subtree keyword masks (aligned
/// with `candidates`). The anchor-probe evaluator computes the masks with
/// per-list seeks instead of a merged list; the masks must equal what
/// `sl.SubtreeMask(candidate)` would report for results to be identical.
std::vector<LcpCandidate> PruneCoveredAncestorsMasked(
    std::vector<LcpCandidate> candidates, const std::vector<uint64_t>& masks);

}  // namespace gks

#endif  // GKS_CORE_WINDOW_SCAN_H_
