#ifndef GKS_CORE_CHUNK_H_
#define GKS_CORE_CHUNK_H_

#include <cstddef>

#include "core/lce.h"
#include "core/merged_list.h"
#include "core/query.h"
#include "index/xml_index.h"
#include "xml/dom.h"

namespace gks {

/// Builds Figure 2(b)-style result chunks: "GKS returns a well-constructed
/// XML chunk" (Sec. 1.2). For a response node, the chunk is the node's
/// subtree restricted to what matters for the query — the attribute leaves
/// the node owns (its context, e.g. <Name>Data Mining</Name>) plus every
/// matched keyword occurrence, with the intermediate elements on their
/// paths reconstructed from the index (no access to the original XML is
/// needed).
class ChunkBuilder {
 public:
  /// Prepares the occurrence list once so chunks for many response nodes
  /// of the same query are cheap. `index` must outlive the builder.
  ChunkBuilder(const XmlIndex& index, const Query& query)
      : index_(index), sl_(MergedList::Build(index, query)) {}

  ChunkBuilder(const ChunkBuilder&) = delete;
  ChunkBuilder& operator=(const ChunkBuilder&) = delete;

  struct Options {
    /// At most this many leaves (attribute values + matches) per chunk.
    size_t max_leaves = 24;
  };

  /// The reconstructed chunk rooted at the response node's tag. Use
  /// xml::WriteXml to render it.
  xml::DomDocument Build(const GksNode& node, const Options& options) const;
  xml::DomDocument Build(const GksNode& node) const {
    return Build(node, Options());
  }

 private:
  const XmlIndex& index_;
  MergedList sl_;
};

}  // namespace gks

#endif  // GKS_CORE_CHUNK_H_
