#ifndef GKS_CORE_TOPK_EVAL_H_
#define GKS_CORE_TOPK_EVAL_H_

#include <cstdint>
#include <vector>

#include "core/arena.h"
#include "core/lce.h"
#include "core/query.h"
#include "index/xml_index.h"

namespace gks {

/// Work counters of one top-k evaluation (surfaced through PlanInfo::topk,
/// explain output, and the gks.search.topk.* registry counters).
struct TopKStats {
  uint64_t segments = 0;               // document segments examined
  uint64_t segments_pruned_sparse = 0; // skipped: < s distinct atoms possible
  uint64_t segments_pruned_bound = 0;  // skipped: rank bound below the k-th
  uint64_t blocks_skipped = 0;         // posting blocks bypassed undecoded
  uint64_t docs_skipped = 0;           // documents never evaluated
};

struct TopKResult {
  /// At most k nodes, already in the searcher's final order (rank desc,
  /// keyword count desc, id asc). Identical to what the full pipeline
  /// would return after sorting and truncating to k.
  std::vector<GksNode> nodes;
  size_t merged_list_size = 0;  // summed over evaluated segments only
  size_t candidate_count = 0;   // summed over evaluated segments only
  TopKStats stats;
};

/// WAND-style block-max evaluator for --top-k queries (see
/// docs/PERFORMANCE.md). Walks the corpus document by document behind one
/// driver cursor per atom (its smallest token list) and, per document
/// segment, either
///   - skips it: fewer than s atoms can occur in it (sparse), or a bounded
///     top-k heap is full and the segment's rank upper bound — computed
///     from the rank_bounds section's per-block max term weights — cannot
///     beat the current k-th score (bound); skips jump whole posting
///     blocks via the skip table without decoding them; or
///   - evaluates it: the document's occurrences run through the exact
///     merge -> window -> LCE -> rank pipeline the full evaluators use.
///
/// Results are bit-identical to full evaluation followed by
/// sort-and-truncate-to-k: segments are only skipped when provably no node
/// in them can enter the top k (bound skips compare strictly, so k-th
/// ties are never dropped), and cross-document windows contribute no
/// candidates (their common prefix is empty). A v2 index without the
/// rank_bounds section still works — bounds read as weight 1.0, so only
/// sparse skips fire.
///
/// `s` must already be clamped (the searcher's effective s); `k` > 0.
TopKResult EvaluateTopK(const XmlIndex& index, const Query& query, uint32_t s,
                        uint32_t k, QueryArena* arena);

}  // namespace gks

#endif  // GKS_CORE_TOPK_EVAL_H_
