#ifndef GKS_CORE_PLANNER_H_
#define GKS_CORE_PLANNER_H_

#include <cstdint>

#include "core/plan.h"
#include "core/probe_eval.h"
#include "core/query.h"
#include "index/xml_index.h"

namespace gks {

/// The planner's output: the decision (with the statistics it was made
/// from, for --explain) plus the probe evaluator's tuning when the
/// strategy is probe/hybrid.
struct PlannerDecision {
  PlanInfo info;
  ProbeOptions probe;
};

/// Inspects per-term posting-list statistics (document frequency, encoded
/// block count, document span — all O(1) reads off list headers and skip
/// tables, no payload decode) and picks an execution strategy:
///
///   merge  — near-uniform list sizes, or too little data for seek
///            overhead to pay off: the PR 2 k-way merge kernel.
///   probe  — skewed sizes: anchor-probe evaluation driven by the
///            n-s+1 smallest lists, decoding only the blocks that window
///            end events and response subtrees touch.
///   hybrid — probe, with non-anchor lists below the materialization
///            threshold decoded eagerly (cheaper than seeking them
///            hundreds of times).
///
/// `requested` != kAuto forces the strategy (every strategy is exact for
/// any s/n, so forcing is always safe — just possibly slower). The
/// heuristic thresholds and measured crossover points are documented in
/// docs/PERFORMANCE.md. `effective_s` is the already-clamped threshold.
///
/// `top_k` > 0 requests the orthogonal top-k axis (PlanInfo::topk). It
/// engages — the block-max evaluator substitutes for the chosen strategy
/// at execution time — only when the estimated anchor postings exceed
/// `topk_scan_floor`; below that bound the candidate set is so small that
/// full scoring plus truncation wins, so the planner leaves the axis
/// disengaged and the searcher truncates instead. Both paths return the
/// identical k best nodes (docs/PERFORMANCE.md); `topk.reason` records
/// the decision either way.
PlannerDecision ChoosePlan(const XmlIndex& index, const Query& query,
                           uint32_t effective_s, PlanMode requested,
                           uint32_t top_k = 0,
                           uint64_t topk_scan_floor = kTopKFullScanPostings);

}  // namespace gks

#endif  // GKS_CORE_PLANNER_H_
