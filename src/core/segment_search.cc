#include "core/segment_search.h"

#include <algorithm>
#include <map>
#include <optional>
#include <utility>
#include <vector>

#include "common/timer.h"
#include "common/trace.h"
#include "core/result_cache.h"
#include "text/analyzer.h"

namespace gks {
namespace {

/// Deepest self-or-ancestor entity of `id` (mirror of the di.cc helper,
/// which is private to that translation unit).
bool LowestEntityComponents(const XmlIndex& index, DeweySpan id,
                            std::vector<uint32_t>* out) {
  for (uint32_t len = id.size; len >= 1; --len) {
    DeweySpan prefix{id.data, len};
    const NodeInfo* info = index.nodes.Find(prefix);
    if (info != nullptr && info->is_entity()) {
      out->assign(prefix.data, prefix.data + prefix.size);
      return true;
    }
  }
  return false;
}

/// Enumerates the DI-qualifying attribute occurrences of one LCE node —
/// owned by the node's entity, value free of query terms, clamped at
/// max_attrs_per_node — in attribute-directory order, calling
/// `fn(tag_name, value, path)` for each. The single shared definition of
/// "what DiscoverDi would accumulate for this node", used by the
/// cross-segment discovery below and by the shard wire protocol's
/// per-node contribution lists (ComputeDiContributions).
template <typename Fn>
void ForEachOwnedDiAttr(const XmlIndex& index, const GksNode& node,
                        const Query& query, const DiOptions& options,
                        Fn&& fn) {
  DeweySpan entity = DeweySpan::Of(node.id);
  auto [begin, end] = index.attributes.SubtreeRange(entity);
  end = std::min(end, begin + options.max_attrs_per_node);
  for (size_t i = begin; i < end; ++i) {
    DeweySpan attr_id = index.attributes.IdAt(i);
    std::vector<uint32_t> owner;
    if (!LowestEntityComponents(index, attr_id, &owner)) continue;
    if (owner.size() != entity.size ||
        !std::equal(owner.begin(), owner.end(), entity.data)) {
      continue;
    }

    uint32_t value_id = index.attributes.ValueAt(i);
    const std::string& value = index.nodes.Value(value_id);
    bool contains_query_term = false;
    for (const std::string& term : text::Analyze(value)) {
      if (query.ContainsTerm(term)) {
        contains_query_term = true;
        break;
      }
    }
    if (contains_query_term) continue;

    std::vector<std::string> path;
    for (uint32_t len = entity.size; len <= attr_id.size; ++len) {
      const NodeInfo* info = index.nodes.Find(DeweySpan{attr_id.data, len});
      path.push_back(info != nullptr
                         ? std::string(index.nodes.TagName(info->tag_id))
                         : "?");
    }
    fn(std::string(index.nodes.TagName(index.attributes.TagAt(i))), value,
       std::move(path));
  }
}

/// DiscoverDi re-derived over nodes that live in different segments. The
/// aggregation key is (attribute tag NAME, value STRING) — segment-local
/// (tag id, value id) pairs are meaningless across indexes, but both maps
/// group exactly the same occurrences, so weights and supports match a
/// single-index run. `nodes` must already be in final (merged) rank
/// order: the first contributor defines the keyword's path, as in di.cc.
std::vector<DiKeyword> DiscoverDiAcrossSegments(
    const SegmentSetSnapshot& snapshot, const std::vector<GksNode>& nodes,
    const Query& query, const DiOptions& options) {
  std::map<std::pair<std::string, std::string>, DiKeyword> accumulated;

  for (const GksNode& node : nodes) {
    if (!node.is_lce || node.rank <= 0.0) continue;
    const SegmentView* view = snapshot.SegmentFor(node.id.doc_id());
    if (view == nullptr) continue;
    ForEachOwnedDiAttr(
        *view->index, node, query, options,
        [&](std::string tag, const std::string& value,
            std::vector<std::string> path) {
          DiKeyword& di = accumulated[{std::move(tag), value}];
          if (di.support == 0) {
            di.value = value;
            di.path = std::move(path);
          }
          di.weight += node.rank;
          ++di.support;
        });
  }

  std::vector<DiKeyword> out;
  out.reserve(accumulated.size());
  for (auto& [key, di] : accumulated) {
    (void)key;
    out.push_back(std::move(di));
  }
  // Same total order as DiscoverDi: the path leg breaks (weight, value)
  // ties deterministically across keying schemes.
  std::sort(out.begin(), out.end(), [](const DiKeyword& a, const DiKeyword& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.value != b.value) return a.value < b.value;
    return a.path < b.path;
  });
  if (out.size() > options.top_m) out.resize(options.top_m);
  return out;
}

/// True when any tombstone falls inside the segment's doc-id range.
bool SegmentHasTombstones(const SegmentSetSnapshot& snapshot,
                          const SegmentView& view) {
  if (snapshot.deleted == nullptr || snapshot.deleted->empty()) return false;
  auto it = std::lower_bound(snapshot.deleted->begin(),
                             snapshot.deleted->end(), view.doc_base);
  return it != snapshot.deleted->end() &&
         *it < view.doc_base + view.doc_count;
}

}  // namespace

Result<SearchResponse> SegmentSearcher::SearchMerged(
    const Query& query, const SearchOptions& options) const {
  SearchResponse merged;
  merged.effective_s =
      std::min<uint32_t>(options.s == 0 ? static_cast<uint32_t>(query.size())
                                        : options.s,
                         static_cast<uint32_t>(query.size()));

  // Per-segment searches run the full pipeline minus DI/refinements
  // (cross-segment stages) and minus trims (global operations). Each
  // installs its own collector, so gks.search.* metrics account every
  // segment; their traces graft below.
  SearchOptions inner_options = options;
  inner_options.discover_di = false;
  inner_options.suggest_refinements = false;
  inner_options.max_results = 0;

  // Per-segment pipelines are independent (each GksSearcher::Search
  // installs its own trace collector, counters are atomic), so with a
  // pool they fan out concurrently; the ordered merge below makes the
  // result identical to the sequential walk. ParallelFor degrades to the
  // inline loop when called from a pool worker or without a pool.
  const std::vector<SegmentView>& segments = snapshot_->segments;
  std::vector<std::optional<Result<SearchResponse>>> partials(
      segments.size());
  ParallelFor(segments.size() > 1 ? pool_ : nullptr, segments.size(),
              [&](size_t i) {
                SearchOptions segment_options = inner_options;
                if (SegmentHasTombstones(*snapshot_, segments[i])) {
                  // Exactness under deletion: the segment's true k best
                  // survivors may rank below k masked nodes, so evaluate
                  // in full and let the merged sort truncate.
                  segment_options.top_k = 0;
                }
                GksSearcher searcher(segments[i].index.get());
                partials[i].emplace(searcher.Search(query, segment_options));
              });

  std::vector<Trace> inner_traces;
  size_t dominant_size = 0;
  bool have_plan = false;
  for (std::optional<Result<SearchResponse>>& partial : partials) {
    if (!partial->ok()) return partial->status();
    SearchResponse& response = partial->value();
    for (GksNode& node : response.nodes) {
      if (snapshot_->IsDeleted(node.id.doc_id())) continue;
      merged.nodes.push_back(std::move(node));
    }
    merged.merged_list_size += response.merged_list_size;
    merged.candidate_count += response.candidate_count;
    if (!have_plan || response.merged_list_size > dominant_size) {
      // The dominant segment's plan stands for the query: with one
      // segment it is exactly the single-index plan, and the posting
      // statistics that drove every other decision are strictly smaller.
      merged.plan = response.plan;
      dominant_size = response.merged_list_size;
      have_plan = true;
    }
    inner_traces.push_back(std::move(response.trace));
  }

  // The searcher's exact rank order, re-established globally.
  std::sort(merged.nodes.begin(), merged.nodes.end(),
            [](const GksNode& a, const GksNode& b) {
              if (a.rank != b.rank) return a.rank > b.rank;
              if (a.keyword_count != b.keyword_count) {
                return a.keyword_count > b.keyword_count;
              }
              return a.id < b.id;
            });
  if (options.top_k > 0 && merged.nodes.size() > options.top_k) {
    merged.nodes.resize(options.top_k);
  }
  for (const GksNode& node : merged.nodes) {
    if (node.is_lce) ++merged.lce_count;
  }

  if (options.discover_di) {
    ScopedSpan span("di");
    DiOptions di_options;
    di_options.top_m = options.di_top_m;
    merged.insights =
        DiscoverDiAcrossSegments(*snapshot_, merged.nodes, query, di_options);
    span.AddItems(merged.insights.size());
  }
  if (options.suggest_refinements) {
    ScopedSpan span("refinement");
    merged.refinements =
        SuggestRefinements(query, merged.nodes, merged.insights);
    span.AddItems(merged.refinements.size());
  }
  if (options.max_results > 0 && merged.nodes.size() > options.max_results) {
    merged.nodes.resize(options.max_results);
  }

  for (size_t i = 0; i < inner_traces.size(); ++i) {
    merged.trace.Graft(
        "segment:" + std::string(snapshot_->segments[i].label),
        inner_traces[i]);
  }
  return merged;
}

Result<SearchResponse> SegmentSearcher::Search(
    const Query& query, const SearchOptions& options) const {
  std::string cache_key;
  if (cache_ != nullptr) {
    cache_key = QueryResultCache::MakeKey(NormalizedQueryText(query), options,
                                          snapshot_->epoch);
    SearchResponse cached;
    if (cache_->Get(cache_key, &cached)) return cached;
  }
  WallTimer total_timer;
  // Cross-segment stages trace under their own collector; per-segment
  // pipelines already feed gks.search.* themselves, so this collector
  // carries no metric prefix (no double counting).
  TraceCollector collector;
  Result<SearchResponse> response = SearchMerged(query, options);
  if (!response.ok()) return response;
  Trace outer = collector.Finish();
  response->timings.di_ms = outer.ElapsedMs("di");
  response->timings.refine_ms = outer.ElapsedMs("refinement");
  for (const TraceSpan& span : response->trace.spans()) {
    // Stage sums across segments (response->trace holds the grafts).
    if (span.name == "merged_list") {
      response->timings.merge_ms += span.elapsed_ms;
    } else if (span.name == "window_scan") {
      response->timings.window_ms += span.elapsed_ms;
    } else if (span.name == "lce") {
      response->timings.lce_ms += span.elapsed_ms;
    }
  }
  response->trace.Graft("segments.combine", outer);
  response->timings.total_ms = total_timer.ElapsedMillis();
  if (cache_ != nullptr) cache_->Put(cache_key, *response);
  return response;
}

Result<SearchResponse> SegmentSearcher::Search(
    std::string_view query_text, const SearchOptions& options) const {
  GKS_ASSIGN_OR_RETURN(Query query, Query::Parse(query_text));
  return Search(query, options);
}

std::string DescribeNode(const SegmentSetSnapshot& snapshot,
                         const GksNode& node, size_t max_attrs) {
  const SegmentView* view = snapshot.SegmentFor(node.id.doc_id());
  if (view == nullptr) return "<?> " + node.id.ToString();
  return DescribeNode(*view->index, node, max_attrs);
}

std::vector<std::vector<DiContribution>> ComputeDiContributions(
    const XmlIndex& index, const std::vector<GksNode>& nodes,
    const Query& query, const DiOptions& options) {
  std::vector<std::vector<DiContribution>> out(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    const GksNode& node = nodes[n];
    if (!node.is_lce || node.rank <= 0.0) continue;
    ForEachOwnedDiAttr(index, node, query, options,
                       [&](std::string tag, const std::string& value,
                           std::vector<std::string> path) {
                         out[n].push_back({std::move(tag), value,
                                           std::move(path)});
                       });
  }
  return out;
}

std::vector<std::vector<DiContribution>> ComputeDiContributions(
    const SegmentSetSnapshot& snapshot, const std::vector<GksNode>& nodes,
    const Query& query, const DiOptions& options) {
  std::vector<std::vector<DiContribution>> out(nodes.size());
  for (size_t n = 0; n < nodes.size(); ++n) {
    const GksNode& node = nodes[n];
    if (!node.is_lce || node.rank <= 0.0) continue;
    const SegmentView* view = snapshot.SegmentFor(node.id.doc_id());
    if (view == nullptr) continue;
    ForEachOwnedDiAttr(*view->index, node, query, options,
                       [&](std::string tag, const std::string& value,
                           std::vector<std::string> path) {
                         out[n].push_back({std::move(tag), value,
                                           std::move(path)});
                       });
  }
  return out;
}

}  // namespace gks
