#ifndef GKS_CORE_SEARCHER_H_
#define GKS_CORE_SEARCHER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/trace.h"
#include "core/di.h"
#include "core/lce.h"
#include "core/plan.h"
#include "core/query.h"
#include "core/refinement.h"
#include "index/xml_index.h"

namespace gks {

class QueryResultCache;  // core/result_cache.h (includes this header)
class ThreadPool;        // common/thread_pool.h

struct SearchOptions {
  /// Minimum number of distinct query keywords a node's subtree must
  /// contain (the paper's s). Clamped to min(s, |Q|); 0 means s = |Q|
  /// (classic AND semantics over GKS nodes).
  uint32_t s = 1;
  /// Keep at most this many ranked nodes in the response (0 = unlimited).
  size_t max_results = 0;
  /// Number of DI keywords to surface.
  size_t di_top_m = 5;
  /// Skip DI discovery (benchmarking search in isolation).
  bool discover_di = true;
  /// Skip refinement suggestions.
  bool suggest_refinements = true;
  /// Execution-strategy override. kAuto lets the planner pick between the
  /// k-way merge kernel and the anchor-probe evaluator from posting-list
  /// statistics; forcing a strategy is always exact, just possibly slower
  /// (docs/PERFORMANCE.md).
  PlanMode plan = PlanMode::kAuto;
  /// When > 0, return only the k best-ranked nodes via the block-max
  /// early-termination evaluator (docs/PERFORMANCE.md). The nodes equal
  /// full evaluation truncated to k; DI and refinements are then derived
  /// from those k nodes only (that is the point of a top-k query). Unlike
  /// `max_results` — a post-hoc trim — `top_k` changes how much work the
  /// evaluator does. Both may be set; max_results applies after.
  uint32_t top_k = 0;
  /// Anchor-postings floor below which a top-k request skips the
  /// block-max segment loop and runs the chosen strategy in full,
  /// truncating the ranked nodes to k afterwards (identical results; the
  /// planner records the choice in plan.topk.reason). Exposed for tests
  /// and benchmarks: 0 engages the evaluator for any non-empty anchor
  /// set, UINT64_MAX never engages it.
  uint64_t topk_scan_floor = kTopKFullScanPostings;
};

/// A GKS response: ranked nodes, DI keywords, refinement suggestions, and
/// search diagnostics (sizes that the paper's complexity analysis and
/// Figures 8-10 are expressed in).
struct SearchResponse {
  std::vector<GksNode> nodes;                       // sorted by rank desc
  std::vector<DiKeyword> insights;                  // top-m DI
  std::vector<RefinementSuggestion> refinements;
  uint32_t effective_s = 0;
  size_t merged_list_size = 0;   // |S_L|
  size_t candidate_count = 0;    // LCP-list entries
  size_t lce_count = 0;          // responses that are LCE nodes

  /// The planner's decision and the statistics behind it; `strategy`
  /// names the evaluator that produced `nodes`.
  PlanInfo plan;

  /// Per-stage wall-clock, for the complexity analysis and --explain.
  /// Populated from `trace` (the span tree is the source of truth);
  /// total_ms >= parse_ms + stage sum, the difference — reported as
  /// `other_ms` — being sort/allocation overhead outside any stage span
  /// (see docs/OBSERVABILITY.md).
  struct Timings {
    double parse_ms = 0.0;    // query-text parse (string overload only)
    double merge_ms = 0.0;    // k-way merge of the posting lists
    double window_ms = 0.0;   // sliding-window LCP candidates
    double lce_ms = 0.0;      // pruning + LCE mapping + ranking
    double di_ms = 0.0;       // DI discovery
    double refine_ms = 0.0;   // refinement suggestions
    double total_ms = 0.0;

    /// parse_ms + the five stage timings (excludes total_ms).
    double StageSumMs() const {
      return parse_ms + merge_ms + window_ms + lce_ms + di_ms + refine_ms;
    }
    /// total_ms minus the accounted stages (clamped at 0): sorting,
    /// result assembly and other unattributed work. Surfaced as
    /// `other_ms` in the explain document so allocator/arena overhead
    /// stays measurable.
    double OtherMs() const {
      double other = total_ms - StageSumMs();
      return other > 0.0 ? other : 0.0;
    }
  };
  Timings timings;

  /// Full span tree for this query (stage spans `merged_list`,
  /// `window_scan`, `lce` (children `prune`, `ranking`, and
  /// `probe.gather` on probe plans), `di`, `refinement`, plus `parse`
  /// for text queries and a zero-length `plan.<strategy>` marker).
  Trace trace;
};

/// Multi-line description of the search diagnostics ("explain" output).
std::string FormatSearchDiagnostics(const SearchResponse& response);

/// Machine-readable explain document (the `--explain-json` payload):
/// response summary + timings + the nested span tree. Schema documented
/// in docs/OBSERVABILITY.md.
std::string ExplainJson(const SearchResponse& response);

/// Facade over the whole Sec. 4-6 pipeline: merged list -> sliding-window
/// LCP candidates -> LCE mapping with independent witnesses -> potential
/// flow ranking -> DI -> refinements.
class GksSearcher {
 public:
  /// `index` must outlive the searcher.
  explicit GksSearcher(const XmlIndex* index) : index_(index) {}

  /// Attaches an optional response cache shared by Search/SearchBatch.
  /// The cache may be shared across searchers and threads; entries are
  /// keyed by (normalized query, options, index epoch), so a cached hit
  /// returns the full response of the equivalent cold search — including
  /// its recorded trace and timings (docs/PERFORMANCE.md). Pass nullptr
  /// to detach.
  void set_cache(QueryResultCache* cache) { cache_ = cache; }
  QueryResultCache* cache() const { return cache_; }

  Result<SearchResponse> Search(const Query& query,
                                const SearchOptions& options = {}) const;
  /// Parses `query_text` (quotes delimit phrases) and searches.
  Result<SearchResponse> Search(std::string_view query_text,
                                const SearchOptions& options = {}) const;

  /// Answers a batch of text queries, fanning them across `pool` (inline
  /// when null — the searcher is stateless and const, so each query is
  /// independent). Responses are positionally aligned with `query_texts`
  /// and identical to what sequential Search calls would return; with a
  /// cache attached, all workers share it.
  std::vector<Result<SearchResponse>> SearchBatch(
      const std::vector<std::string>& query_texts,
      const SearchOptions& options, ThreadPool* pool) const;

  /// Recursive DI discovery (Sec. 2.3): round 0 returns DI^0 for `query`;
  /// each later round feeds the previous round's top-m DI values back as
  /// the next query. Stops early when a round yields no DI.
  Result<std::vector<std::vector<DiKeyword>>> DiscoverRecursiveDi(
      const Query& query, const SearchOptions& options, size_t rounds) const;

  const XmlIndex& index() const { return *index_; }

 private:
  /// Pipeline body; runs under the caller-installed TraceCollector.
  Result<SearchResponse> SearchTraced(const Query& query,
                                      const SearchOptions& options) const;

  const XmlIndex* index_;
  QueryResultCache* cache_ = nullptr;
};

/// One-line description of a response node for CLIs and examples:
/// "<Course> d0.0.1.1.0 [EN] keywords=3 rank=3.00 {Name: Data Mining}".
std::string DescribeNode(const XmlIndex& index, const GksNode& node,
                         size_t max_attrs = 3);

/// Canonical cache-key form of a parsed query: analyzed terms plus tag
/// constraints, independent of the raw spelling. Shared by the result
/// cache and the multi-segment searcher (core/segment_search.h).
std::string NormalizedQueryText(const Query& query);

}  // namespace gks

#endif  // GKS_CORE_SEARCHER_H_
