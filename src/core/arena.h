#ifndef GKS_CORE_ARENA_H_
#define GKS_CORE_ARENA_H_

#include <cstdint>
#include <vector>

#include "index/posting_list.h"

namespace gks {

/// Reusable per-query scratch storage. Every search allocates the same
/// shapes over and over — per-atom occurrence lists, the merged-list id
/// and atom arrays, probe gather buffers — and on a server worker those
/// allocations are the residual visible in `Timings.total_ms` beyond the
/// stage spans. A QueryArena keeps the freed buffers (capacity intact)
/// and hands them back on the next query.
///
/// One arena per worker thread (`ThreadLocal()`), so no locking: the
/// searcher and the probe evaluator take buffers at query start and put
/// them back when the query's pipeline no longer reads them. A buffer
/// that is never returned is simply re-allocated next time — the pool is
/// an optimization, not an ownership contract.
///
/// Instruments (docs/OBSERVABILITY.md): `gks.search.arena.reuses_total`
/// counts takes served from the pool instead of fresh allocations;
/// `gks.search.arena.pooled_bytes` gauges the bytes currently parked.
class QueryArena {
 public:
  QueryArena() = default;
  QueryArena(const QueryArena&) = delete;
  QueryArena& operator=(const QueryArena&) = delete;

  /// The calling thread's arena (created on first use, lives for the
  /// thread — exactly the "pooled per server worker" shape, since the
  /// server pins each query to one ThreadPool worker).
  static QueryArena& ThreadLocal();

  /// A cleared PackedIds, with whatever capacity its previous life left.
  PackedIds TakeIds();
  /// Returns a buffer to the pool (cleared here; capacity kept).
  void PutIds(PackedIds&& ids);

  /// Same protocol for raw uint32 arrays (merged-list atom tags etc.).
  std::vector<uint32_t> TakeU32();
  void PutU32(std::vector<uint32_t>&& v);

  /// Bytes parked in the pool right now.
  size_t PooledBytes() const;

 private:
  std::vector<PackedIds> ids_;
  std::vector<std::vector<uint32_t>> u32_;
};

}  // namespace gks

#endif  // GKS_CORE_ARENA_H_
