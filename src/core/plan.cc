#include "core/plan.h"

namespace gks {

const char* PlanModeName(PlanMode mode) {
  switch (mode) {
    case PlanMode::kAuto: return "auto";
    case PlanMode::kMerge: return "merge";
    case PlanMode::kProbe: return "probe";
    case PlanMode::kHybrid: return "hybrid";
  }
  return "auto";
}

bool ParsePlanMode(std::string_view text, PlanMode* out) {
  if (text == "auto") *out = PlanMode::kAuto;
  else if (text == "merge") *out = PlanMode::kMerge;
  else if (text == "probe") *out = PlanMode::kProbe;
  else if (text == "hybrid") *out = PlanMode::kHybrid;
  else return false;
  return true;
}

}  // namespace gks
