#include "core/analytics.h"

#include <algorithm>
#include <cstdlib>
#include <limits>
#include <map>

namespace gks {
namespace {

// Calls f(tag_id, value_id) for every attribute value owned by an LCE node
// of the response (same ownership rule as DI: the value's lowest entity
// ancestor is the node). `f` also receives the owning node.
template <typename F>
void ForEachOwnedValue(const XmlIndex& index,
                       const std::vector<GksNode>& nodes,
                       size_t max_attrs_per_node, F f) {
  for (const GksNode& node : nodes) {
    if (!node.is_lce) continue;
    DeweySpan entity = DeweySpan::Of(node.id);
    auto [begin, end] = index.attributes.SubtreeRange(entity);
    end = std::min(end, begin + max_attrs_per_node);
    for (size_t i = begin; i < end; ++i) {
      DeweySpan attr_id = index.attributes.IdAt(i);
      // Owned by this node iff no entity sits strictly between the node
      // and the attribute (same rule DI discovery applies).
      bool deeper_entity = false;
      for (uint32_t len = attr_id.size; len > entity.size; --len) {
        const NodeInfo* info = index.nodes.Find(DeweySpan{attr_id.data, len});
        if (info != nullptr && info->is_entity()) {
          deeper_entity = true;
          break;
        }
      }
      if (deeper_entity) continue;
      f(node, index.attributes.TagAt(i), index.attributes.ValueAt(i));
    }
  }
}

bool ParseNumber(const std::string& text, double* value) {
  char* end = nullptr;
  *value = std::strtod(text.c_str(), &end);
  return end != text.c_str() && end != nullptr && *end == '\0';
}

}  // namespace

std::vector<Facet> ComputeFacets(const XmlIndex& index,
                                 const std::vector<GksNode>& nodes,
                                 const FacetOptions& options) {
  // tag -> value -> bucket
  std::map<uint32_t, std::map<uint32_t, FacetBucket>> grouped;
  ForEachOwnedValue(index, nodes, options.max_attrs_per_node,
                    [&](const GksNode& node, uint32_t tag, uint32_t value) {
                      FacetBucket& bucket = grouped[tag][value];
                      if (bucket.count == 0) {
                        bucket.value = index.nodes.Value(value);
                      }
                      ++bucket.count;
                      bucket.rank_mass += node.rank;
                    });

  std::vector<Facet> facets;
  for (auto& [tag, buckets] : grouped) {
    Facet facet;
    facet.tag = index.nodes.TagName(tag);
    for (auto& [value_id, bucket] : buckets) {
      (void)value_id;
      facet.buckets.push_back(std::move(bucket));
    }
    std::sort(facet.buckets.begin(), facet.buckets.end(),
              [](const FacetBucket& a, const FacetBucket& b) {
                if (a.count != b.count) return a.count > b.count;
                return a.value < b.value;
              });
    if (facet.buckets.size() > options.max_buckets_per_facet) {
      facet.buckets.resize(options.max_buckets_per_facet);
    }
    facets.push_back(std::move(facet));
  }
  // Most informative facets (highest total count) first.
  std::sort(facets.begin(), facets.end(), [](const Facet& a, const Facet& b) {
    uint64_t ta = 0, tb = 0;
    for (const FacetBucket& bucket : a.buckets) ta += bucket.count;
    for (const FacetBucket& bucket : b.buckets) tb += bucket.count;
    if (ta != tb) return ta > tb;
    return a.tag < b.tag;
  });
  if (facets.size() > options.max_facets) facets.resize(options.max_facets);
  return facets;
}

namespace {

// Collects the parsed numeric values of `tag` across the response.
Result<std::vector<double>> NumericValues(const XmlIndex& index,
                                          const std::vector<GksNode>& nodes,
                                          std::string_view tag,
                                          uint64_t* skipped) {
  uint32_t tag_id = 0;
  if (!index.nodes.FindTag(tag, &tag_id)) {
    return Status::NotFound("unknown attribute tag: " + std::string(tag));
  }
  std::vector<double> values;
  *skipped = 0;
  ForEachOwnedValue(index, nodes, 100000,
                    [&](const GksNode&, uint32_t t, uint32_t value_id) {
                      if (t != tag_id) return;
                      double value = 0;
                      if (ParseNumber(index.nodes.Value(value_id), &value)) {
                        values.push_back(value);
                      } else {
                        ++*skipped;
                      }
                    });
  if (values.empty() && *skipped == 0) {
    return Status::NotFound("attribute '" + std::string(tag) +
                            "' does not occur in the response");
  }
  return values;
}

}  // namespace

Result<NumericSummary> AggregateNumeric(const XmlIndex& index,
                                        const std::vector<GksNode>& nodes,
                                        std::string_view tag) {
  NumericSummary summary;
  GKS_ASSIGN_OR_RETURN(std::vector<double> values,
                       NumericValues(index, nodes, tag, &summary.skipped));
  summary.count = values.size();
  if (!values.empty()) {
    summary.min = std::numeric_limits<double>::infinity();
    summary.max = -std::numeric_limits<double>::infinity();
    for (double value : values) {
      summary.min = std::min(summary.min, value);
      summary.max = std::max(summary.max, value);
      summary.sum += value;
    }
    summary.mean = summary.sum / static_cast<double>(values.size());
  }
  return summary;
}

Result<std::vector<HistogramBucket>> NumericHistogram(
    const XmlIndex& index, const std::vector<GksNode>& nodes,
    std::string_view tag, size_t buckets) {
  if (buckets == 0) {
    return Status::InvalidArgument("histogram needs at least one bucket");
  }
  uint64_t skipped = 0;
  GKS_ASSIGN_OR_RETURN(std::vector<double> values,
                       NumericValues(index, nodes, tag, &skipped));
  if (values.empty()) {
    return Status::NotFound("no numeric values for histogram");
  }
  double lo = *std::min_element(values.begin(), values.end());
  double hi = *std::max_element(values.begin(), values.end());
  double width = (hi - lo) / static_cast<double>(buckets);
  if (width <= 0) width = 1.0;

  std::vector<HistogramBucket> histogram(buckets);
  for (size_t i = 0; i < buckets; ++i) {
    histogram[i].lo = lo + width * static_cast<double>(i);
    histogram[i].hi = histogram[i].lo + width;
  }
  for (double value : values) {
    size_t slot = static_cast<size_t>((value - lo) / width);
    if (slot >= buckets) slot = buckets - 1;  // hi boundary inclusive
    ++histogram[slot].count;
  }
  return histogram;
}

}  // namespace gks
