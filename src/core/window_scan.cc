#include "core/window_scan.h"

#include <algorithm>
#include <map>

namespace gks {
namespace {

// Longest common prefix of two spans, as a fresh DeweyId.
DeweyId CommonPrefix(DeweySpan a, DeweySpan b) {
  uint32_t limit = std::min(a.size, b.size);
  uint32_t i = 0;
  while (i < limit && a.data[i] == b.data[i]) ++i;
  return DeweyId(std::vector<uint32_t>(a.data, a.data + i));
}

}  // namespace

std::vector<LcpCandidate> ComputeLcpCandidates(const MergedList& sl,
                                               uint32_t s) {
  std::vector<LcpCandidate> out;
  if (s == 0 || sl.empty()) return out;

  std::vector<uint32_t> atom_count(64, 0);
  uint32_t unique = 0;
  size_t r = 0;  // exclusive right end of the current window

  // Ordered map keyed by the id's components gives document-ordered output
  // for free; candidate counts are usually small compared to |S_L|.
  std::map<std::vector<uint32_t>, uint32_t> counts;

  for (size_t l = 0; l < sl.size(); ++l) {
    // Grow the window until it holds s unique keywords (the !sU loop).
    while (unique < s && r < sl.size()) {
      if (atom_count[sl.AtomAt(r)]++ == 0) ++unique;
      ++r;
    }
    if (unique < s) break;  // no further window can reach s keywords

    DeweyId prefix = CommonPrefix(sl.IdAt(l), sl.IdAt(r - 1));
    if (!prefix.empty()) {
      ++counts[prefix.components()];
    }

    // Slide: drop the left entry.
    if (--atom_count[sl.AtomAt(l)] == 0) --unique;
  }

  out.reserve(counts.size());
  for (auto& [components, count] : counts) {
    out.push_back(LcpCandidate{DeweyId(components), count});
  }
  return out;
}

std::vector<LcpCandidate> PruneCoveredAncestors(
    const MergedList& sl, std::vector<LcpCandidate> candidates) {
  std::vector<uint64_t> masks;
  masks.reserve(candidates.size());
  for (const LcpCandidate& candidate : candidates) {
    masks.push_back(sl.SubtreeMask(DeweySpan::Of(candidate.node)));
  }
  return PruneCoveredAncestorsMasked(std::move(candidates), masks);
}

std::vector<LcpCandidate> PruneCoveredAncestorsMasked(
    std::vector<LcpCandidate> candidates, const std::vector<uint64_t>& masks) {
  struct Open {
    size_t index;               // into `candidates`
    uint64_t mask;              // own subtree keyword mask
    uint64_t descendant_union = 0;
    bool has_descendant = false;
  };

  std::vector<bool> keep(candidates.size(), true);
  std::vector<Open> stack;

  auto finalize = [&](const Open& open) {
    if (open.has_descendant && open.descendant_union == open.mask) {
      keep[open.index] = false;
    }
    if (!stack.empty()) {
      stack.back().descendant_union |= open.mask;
      stack.back().has_descendant = true;
    }
  };

  for (size_t i = 0; i < candidates.size(); ++i) {
    const DeweyId& id = candidates[i].node;
    while (!stack.empty() &&
           !candidates[stack.back().index].node.IsAncestorOf(id)) {
      Open open = stack.back();
      stack.pop_back();
      finalize(open);
    }
    stack.push_back(Open{i, masks[i], 0, false});
  }
  while (!stack.empty()) {
    Open open = stack.back();
    stack.pop_back();
    finalize(open);
  }

  std::vector<LcpCandidate> kept;
  kept.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    if (keep[i]) kept.push_back(std::move(candidates[i]));
  }
  return kept;
}

}  // namespace gks
