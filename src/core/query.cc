#include "core/query.h"

#include <cctype>

#include "text/analyzer.h"

namespace gks {
namespace {

Status MakeAtom(std::string_view raw, std::vector<QueryAtom>* atoms,
                std::string_view tag_constraint = {}) {
  std::vector<std::string> terms = text::Analyze(raw);
  if (terms.empty()) return Status::OK();  // all stop words: drop silently
  QueryAtom atom;
  atom.raw.assign(raw);
  atom.terms = std::move(terms);
  if (!tag_constraint.empty()) {
    // Tag constraints go through the tag pipeline (no stop-word removal,
    // same stemming) so `years:2001` still matches <year>.
    text::AnalyzerOptions tag_options;
    tag_options.remove_stopwords = false;
    atom.tag_constraint = text::AnalyzeTerm(tag_constraint, tag_options);
    if (atom.tag_constraint.empty()) {
      return Status::InvalidArgument("empty tag constraint in query");
    }
    atom.raw = std::string(tag_constraint) + ":" + atom.raw;
  }
  atoms->push_back(std::move(atom));
  return Status::OK();
}

// Splits a leading `tag:` prefix off an unquoted token. A trailing colon
// (`tag:"phrase"` — the quote ended the token scan) leaves the remainder
// empty; the caller then attaches the following phrase.
std::string_view SplitTagConstraint(std::string_view* token) {
  size_t colon = token->find(':');
  if (colon == std::string_view::npos || colon == 0) return {};
  std::string_view tag = token->substr(0, colon);
  token->remove_prefix(colon + 1);
  return tag;
}

}  // namespace

Result<Query> Query::Parse(std::string_view text) {
  std::vector<QueryAtom> atoms;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    if (c == '"') {
      size_t close = text.find('"', i + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quote in query");
      }
      GKS_RETURN_IF_ERROR(MakeAtom(text.substr(i + 1, close - i - 1), &atoms));
      i = close + 1;
      continue;
    }
    size_t end = i;
    while (end < text.size() &&
           !std::isspace(static_cast<unsigned char>(text[end])) &&
           text[end] != '"') {
      ++end;
    }
    std::string_view token = text.substr(i, end - i);
    std::string_view tag = SplitTagConstraint(&token);
    if (!tag.empty() && end < text.size() && text[end] == '"' &&
        token.empty()) {
      // `tag:"multi word"` — the quoted body follows immediately.
      size_t close = text.find('"', end + 1);
      if (close == std::string_view::npos) {
        return Status::InvalidArgument("unterminated quote in query");
      }
      GKS_RETURN_IF_ERROR(
          MakeAtom(text.substr(end + 1, close - end - 1), &atoms, tag));
      i = close + 1;
      continue;
    }
    GKS_RETURN_IF_ERROR(MakeAtom(token, &atoms, tag));
    i = end;
  }
  if (atoms.empty()) {
    return Status::InvalidArgument("query has no searchable keyword");
  }
  if (atoms.size() > 64) {
    return Status::InvalidArgument("query exceeds 64 keywords");
  }
  Query query;
  query.atoms_ = std::move(atoms);
  return query;
}

Result<Query> Query::FromKeywords(const std::vector<std::string>& keywords) {
  std::vector<QueryAtom> atoms;
  for (const std::string& keyword : keywords) {
    GKS_RETURN_IF_ERROR(MakeAtom(keyword, &atoms));
  }
  if (atoms.empty()) {
    return Status::InvalidArgument("query has no searchable keyword");
  }
  if (atoms.size() > 64) {
    return Status::InvalidArgument("query exceeds 64 keywords");
  }
  Query query;
  query.atoms_ = std::move(atoms);
  return query;
}

bool Query::ContainsTerm(std::string_view analyzed_term) const {
  for (const QueryAtom& atom : atoms_) {
    for (const std::string& term : atom.terms) {
      if (term == analyzed_term) return true;
    }
  }
  return false;
}

std::string Query::ToString() const {
  std::string out;
  for (const QueryAtom& atom : atoms_) {
    if (!out.empty()) out.push_back(' ');
    if (atom.raw.find(' ') != std::string::npos) {
      out.push_back('"');
      out += atom.raw;
      out.push_back('"');
    } else {
      out += atom.raw;
    }
  }
  return out;
}

}  // namespace gks
