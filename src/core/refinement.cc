#include "core/refinement.h"

#include <algorithm>
#include <bit>
#include <map>
#include <set>

namespace gks {

std::vector<RefinementSuggestion> SuggestRefinements(
    const Query& query, const std::vector<GksNode>& ranked_nodes,
    const std::vector<DiKeyword>& insights, size_t max_suggestions) {
  const uint64_t full = query.full_mask();

  // Distinct keyword subsets among the response nodes, keyed by mask, with
  // the best rank seen for each.
  std::map<uint64_t, double> subset_score;
  for (const GksNode& node : ranked_nodes) {
    if (node.keyword_mask == 0) continue;
    double& best = subset_score[node.keyword_mask];
    best = std::max(best, node.rank);
  }

  std::vector<RefinementSuggestion> out;
  std::set<std::vector<std::string>> seen;

  auto add = [&](RefinementSuggestion suggestion) {
    std::vector<std::string> sorted = suggestion.keywords;
    std::sort(sorted.begin(), sorted.end());
    if (seen.insert(std::move(sorted)).second) {
      out.push_back(std::move(suggestion));
    }
  };

  // Sub-queries: the keyword distributions actually present in the data.
  // A mask equal to the full query means the query already matches whole
  // nodes — nothing to refine there.
  for (const auto& [mask, score] : subset_score) {
    if (mask == full || std::popcount(mask) < 2) continue;
    RefinementSuggestion suggestion;
    suggestion.kind = RefinementSuggestion::Kind::kSubQuery;
    suggestion.score = score;
    for (size_t i = 0; i < query.size(); ++i) {
      if (mask & (1ull << i)) suggestion.keywords.push_back(query.atoms()[i].raw);
    }
    suggestion.rationale = "keyword subset co-occurring in the data";
    add(std::move(suggestion));
  }

  // Morphs: take the best sub-query and extend it with top DI values,
  // replacing keywords the data cannot satisfy together.
  uint64_t best_mask = 0;
  double best_score = -1.0;
  for (const auto& [mask, score] : subset_score) {
    if (mask == full) continue;
    if (score > best_score) {
      best_score = score;
      best_mask = mask;
    }
  }
  if (best_mask != 0) {
    for (const DiKeyword& di : insights) {
      RefinementSuggestion suggestion;
      suggestion.kind = RefinementSuggestion::Kind::kMorph;
      suggestion.score = best_score * 0.5 + di.weight * 0.5;
      for (size_t i = 0; i < query.size(); ++i) {
        if (best_mask & (1ull << i)) {
          suggestion.keywords.push_back(query.atoms()[i].raw);
        }
      }
      suggestion.keywords.push_back(di.value);
      suggestion.rationale = "morph with DI keyword " + di.ToString();
      add(std::move(suggestion));
    }
  }

  std::sort(out.begin(), out.end(),
            [](const RefinementSuggestion& a, const RefinementSuggestion& b) {
              return a.score > b.score;
            });
  if (out.size() > max_suggestions) out.resize(max_suggestions);
  return out;
}

}  // namespace gks
