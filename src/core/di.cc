#include "core/di.h"

#include <algorithm>
#include <map>

#include "text/analyzer.h"

namespace gks {
namespace {

// Deepest self-or-ancestor entity of `id`, as a component vector.
bool LowestEntityComponents(const XmlIndex& index, DeweySpan id,
                            std::vector<uint32_t>* out) {
  for (uint32_t len = id.size; len >= 1; --len) {
    DeweySpan prefix{id.data, len};
    const NodeInfo* info = index.nodes.Find(prefix);
    if (info != nullptr && info->is_entity()) {
      out->assign(prefix.data, prefix.data + prefix.size);
      return true;
    }
  }
  return false;
}

}  // namespace

std::string DiKeyword::ToString() const {
  std::string out = "<";
  if (!path.empty()) {
    // Use the attribute node's tag as the semantic label, prefixed with
    // the LCE tag when the path is deeper than one hop.
    if (path.size() > 2) {
      for (size_t i = 0; i + 1 < path.size(); ++i) {
        out += path[i];
        out += ": ";
      }
    } else {
      out += path.back();
      out += ": ";
    }
  }
  out += value;
  out += ">";
  return out;
}

std::vector<DiKeyword> DiscoverDi(const XmlIndex& index,
                                  const std::vector<GksNode>& nodes,
                                  const Query& query,
                                  const DiOptions& options) {
  // Keyed by (attribute tag, value id): the same value under different tags
  // carries different semantics ("2001" as a year vs as a street number).
  std::map<std::pair<uint32_t, uint32_t>, DiKeyword> accumulated;

  for (const GksNode& node : nodes) {
    if (!node.is_lce || node.rank <= 0.0) continue;
    DeweySpan entity = DeweySpan::Of(node.id);
    auto [begin, end] = index.attributes.SubtreeRange(entity);
    end = std::min(end, begin + options.max_attrs_per_node);
    for (size_t i = begin; i < end; ++i) {
      DeweySpan attr_id = index.attributes.IdAt(i);
      // The value belongs to this LCE only if no deeper entity owns it.
      std::vector<uint32_t> owner;
      if (!LowestEntityComponents(index, attr_id, &owner)) continue;
      if (owner.size() != entity.size ||
          !std::equal(owner.begin(), owner.end(), entity.data)) {
        continue;
      }

      uint32_t value_id = index.attributes.ValueAt(i);
      const std::string& value = index.nodes.Value(value_id);
      // Exclude values that repeat a query keyword (Sec. 6.2).
      bool contains_query_term = false;
      for (const std::string& term : text::Analyze(value)) {
        if (query.ContainsTerm(term)) {
          contains_query_term = true;
          break;
        }
      }
      if (contains_query_term) continue;

      auto key = std::make_pair(index.attributes.TagAt(i), value_id);
      DiKeyword& di = accumulated[key];
      if (di.support == 0) {
        di.value = value;
        for (uint32_t len = entity.size; len <= attr_id.size; ++len) {
          const NodeInfo* info =
              index.nodes.Find(DeweySpan{attr_id.data, len});
          di.path.push_back(info != nullptr
                                ? index.nodes.TagName(info->tag_id)
                                : "?");
        }
      }
      di.weight += node.rank;
      ++di.support;
    }
  }

  std::vector<DiKeyword> out;
  out.reserve(accumulated.size());
  for (auto& [key, di] : accumulated) {
    (void)key;
    out.push_back(std::move(di));
  }
  // The path leg totalizes the order: distinct (tag, value) keys with the
  // same weight and value string still differ in the attribute tag — the
  // path's last element. Without it, ties would surface in accumulation-
  // map order, which differs between this numeric-keyed walk and the
  // string-keyed cross-segment/cross-shard replays (core/shard_merge.cc).
  std::sort(out.begin(), out.end(), [](const DiKeyword& a, const DiKeyword& b) {
    if (a.weight != b.weight) return a.weight > b.weight;
    if (a.value != b.value) return a.value < b.value;
    return a.path < b.path;
  });
  if (out.size() > options.top_m) out.resize(options.top_m);
  return out;
}

}  // namespace gks
