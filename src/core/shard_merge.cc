#include "core/shard_merge.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <utility>

#include "core/refinement.h"

namespace gks {

std::string EncodeDoubleBits(double value) {
  uint64_t bits = 0;
  std::memcpy(&bits, &value, sizeof(bits));
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx", (unsigned long long)bits);
  return buf;
}

bool DecodeDoubleBits(const std::string& hex, double* value) {
  uint64_t bits = 0;
  if (!DecodeMaskBits(hex, &bits)) return false;
  std::memcpy(value, &bits, sizeof(bits));
  return true;
}

std::string EncodeMaskBits(uint64_t mask) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%llx", (unsigned long long)mask);
  return buf;
}

bool DecodeMaskBits(const std::string& hex, uint64_t* mask) {
  if (hex.empty() || hex.size() > 16) return false;
  char* end = nullptr;
  errno = 0;
  unsigned long long parsed = std::strtoull(hex.c_str(), &end, 16);
  if (errno != 0 || end != hex.c_str() + hex.size()) return false;
  *mask = parsed;
  return true;
}

MergedShardResult MergeShardResults(const Query& query,
                                    const SearchOptions& options,
                                    std::vector<ShardPartialResult> partials) {
  MergedShardResult merged;
  SearchResponse& response = merged.response;
  response.effective_s =
      std::min<uint32_t>(options.s == 0 ? static_cast<uint32_t>(query.size())
                                        : options.s,
                         static_cast<uint32_t>(query.size()));

  std::vector<ShardResultNode> nodes;
  size_t dominant_size = 0;
  bool have_plan = false;
  for (ShardPartialResult& partial : partials) {
    for (ShardResultNode& node : partial.nodes) {
      nodes.push_back(std::move(node));
    }
    response.merged_list_size += partial.merged_list_size;
    response.candidate_count += partial.candidate_count;
    if (!have_plan || partial.merged_list_size > dominant_size) {
      // Dominant-partial rule, as in SegmentSearcher: the shard whose
      // posting statistics dwarf the others stands for the query's plan.
      response.plan.strategy = partial.plan;
      dominant_size = partial.merged_list_size;
      have_plan = true;
    }
    merged.epoch = std::max(merged.epoch, partial.epoch);
  }

  // The searcher's exact rank order, re-established globally. Dewey ids
  // are globally unique (document-range sharding), so the comparator is
  // a total order and the result is independent of shard arrival order.
  std::sort(nodes.begin(), nodes.end(),
            [](const ShardResultNode& a, const ShardResultNode& b) {
              if (a.node.rank != b.node.rank) return a.node.rank > b.node.rank;
              if (a.node.keyword_count != b.node.keyword_count) {
                return a.node.keyword_count > b.node.keyword_count;
              }
              return a.node.id < b.node.id;
            });
  if (options.top_k > 0 && nodes.size() > options.top_k) {
    nodes.resize(options.top_k);
  }

  for (const ShardResultNode& node : nodes) {
    response.nodes.push_back(node.node);
    if (node.node.is_lce) ++response.lce_count;
  }

  if (options.discover_di) {
    // Replay of DiscoverDi's accumulation over the wire contributions:
    // merged rank order, first contributor defines the path, weight sums
    // the exact (bit-pattern) ranks — identical float addition order and
    // operands to the single-index run.
    std::map<std::pair<std::string, std::string>, DiKeyword> accumulated;
    for (const ShardResultNode& node : nodes) {
      for (const DiContribution& contribution : node.di) {
        DiKeyword& di = accumulated[{contribution.tag, contribution.value}];
        if (di.support == 0) {
          di.value = contribution.value;
          di.path = contribution.path;
        }
        di.weight += node.node.rank;
        ++di.support;
      }
    }
    response.insights.reserve(accumulated.size());
    for (auto& [key, di] : accumulated) {
      (void)key;
      response.insights.push_back(std::move(di));
    }
    // Same total order as DiscoverDi: the path leg breaks (weight, value)
    // ties deterministically across keying schemes.
    std::sort(response.insights.begin(), response.insights.end(),
              [](const DiKeyword& a, const DiKeyword& b) {
                if (a.weight != b.weight) return a.weight > b.weight;
                if (a.value != b.value) return a.value < b.value;
                return a.path < b.path;
              });
    if (response.insights.size() > options.di_top_m) {
      response.insights.resize(options.di_top_m);
    }
  }
  if (options.suggest_refinements) {
    response.refinements =
        SuggestRefinements(query, response.nodes, response.insights);
  }
  if (options.max_results > 0 && nodes.size() > options.max_results) {
    nodes.resize(options.max_results);
    response.nodes.resize(options.max_results);
  }

  merged.doc_names.reserve(nodes.size());
  merged.describes.reserve(nodes.size());
  for (ShardResultNode& node : nodes) {
    merged.doc_names.push_back(std::move(node.doc_name));
    merged.describes.push_back(std::move(node.describe));
  }
  return merged;
}

}  // namespace gks
