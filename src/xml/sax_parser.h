#ifndef GKS_XML_SAX_PARSER_H_
#define GKS_XML_SAX_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xml/lexer.h"

namespace gks::xml {

/// Streaming event receiver. All callbacks default to success so handlers
/// override only what they need. Returning a non-OK status aborts the parse
/// and propagates the status to the caller.
class SaxHandler {
 public:
  virtual ~SaxHandler() = default;

  virtual Status StartDocument() { return Status::OK(); }
  virtual Status EndDocument() { return Status::OK(); }
  virtual Status StartElement(std::string_view name,
                              const std::vector<XmlAttribute>& attributes) {
    (void)name;
    (void)attributes;
    return Status::OK();
  }
  virtual Status EndElement(std::string_view name) {
    (void)name;
    return Status::OK();
  }
  /// Character data (entities already expanded; CDATA delivered verbatim).
  virtual Status Characters(std::string_view text) {
    (void)text;
    return Status::OK();
  }
};

struct SaxOptions {
  /// Drop text nodes that consist solely of whitespace (pretty-printing
  /// noise); defaults on because every GKS dataset is element-structured.
  bool skip_whitespace_text = true;
};

/// Parses an in-memory document, enforcing well-formedness: exactly one
/// root element, properly nested/matched tags, no content after the root.
Status ParseXml(std::string_view input, SaxHandler* handler,
                const SaxOptions& options = SaxOptions());

/// Reads `path` fully into memory and parses it.
Status ParseXmlFile(const std::string& path, SaxHandler* handler,
                    const SaxOptions& options = SaxOptions());

/// Reads a whole file into `*contents` (shared by parser and index loader).
Status ReadFileToString(const std::string& path, std::string* contents);

/// Writes `contents` to `path`, replacing any existing file.
Status WriteStringToFile(const std::string& path, std::string_view contents);

}  // namespace gks::xml

#endif  // GKS_XML_SAX_PARSER_H_
