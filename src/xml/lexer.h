#ifndef GKS_XML_LEXER_H_
#define GKS_XML_LEXER_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace gks::xml {

/// One name="value" pair. Values are stored unescaped.
struct XmlAttribute {
  std::string name;
  std::string value;

  bool operator==(const XmlAttribute& other) const {
    return name == other.name && value == other.value;
  }
};

/// A single structural token produced by the lexer. The lexer does not
/// validate element nesting — that is the SAX parser's job.
struct XmlToken {
  enum class Kind {
    kStartTag,   // <name a="1"> or <name/> (see self_closing)
    kEndTag,     // </name>
    kText,       // character data (unescaped)
    kCData,      // <![CDATA[...]]> content
    kComment,    // <!-- ... -->
    kProcessing, // <?name ...?> including the XML declaration
    kDoctype,    // <!DOCTYPE ...> (content not interpreted)
    kEof,
  };

  Kind kind = Kind::kEof;
  std::string name;                     // tag / PI target name
  std::string text;                     // text, CDATA, comment, PI body
  std::vector<XmlAttribute> attributes; // start tags only
  bool self_closing = false;            // start tags only
  size_t line = 0;                      // 1-based position of token start
  size_t column = 0;
};

/// Pull-lexer over an in-memory XML document. Tracks line/column for error
/// reporting. `input` must outlive the lexer.
class XmlLexer {
 public:
  explicit XmlLexer(std::string_view input) : input_(input) {}

  XmlLexer(const XmlLexer&) = delete;
  XmlLexer& operator=(const XmlLexer&) = delete;

  /// Produces the next token, or a Corruption status pinpointing the
  /// offending line/column. After kEof, keeps returning kEof.
  Status Next(XmlToken* token);

  size_t line() const { return line_; }
  size_t column() const { return column_; }

 private:
  Status LexMarkup(XmlToken* token);
  Status LexStartTag(XmlToken* token);
  Status LexEndTag(XmlToken* token);
  Status LexComment(XmlToken* token);
  Status LexCData(XmlToken* token);
  Status LexProcessing(XmlToken* token);
  Status LexDoctype(XmlToken* token);
  Status LexName(std::string* name);
  Status LexAttributeValue(std::string* value);
  void SkipWhitespace();

  bool AtEnd() const { return pos_ >= input_.size(); }
  char Peek() const { return input_[pos_]; }
  char Advance();
  bool Match(char expected);
  Status ErrorHere(std::string message) const;

  std::string_view input_;
  size_t pos_ = 0;
  size_t line_ = 1;
  size_t column_ = 1;
};

}  // namespace gks::xml

#endif  // GKS_XML_LEXER_H_
