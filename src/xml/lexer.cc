#include "xml/lexer.h"

#include <cctype>

#include "xml/escape.h"

namespace gks::xml {
namespace {

bool IsNameStartChar(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == ':' ||
         static_cast<unsigned char>(c) >= 0x80;
}

bool IsNameChar(char c) {
  return IsNameStartChar(c) || std::isdigit(static_cast<unsigned char>(c)) ||
         c == '-' || c == '.';
}

}  // namespace

char XmlLexer::Advance() {
  char c = input_[pos_++];
  if (c == '\n') {
    ++line_;
    column_ = 1;
  } else {
    ++column_;
  }
  return c;
}

bool XmlLexer::Match(char expected) {
  if (AtEnd() || Peek() != expected) return false;
  Advance();
  return true;
}

Status XmlLexer::ErrorHere(std::string message) const {
  return Status::Corruption("XML error at line " + std::to_string(line_) +
                            ", col " + std::to_string(column_) + ": " +
                            std::move(message));
}

void XmlLexer::SkipWhitespace() {
  while (!AtEnd() && std::isspace(static_cast<unsigned char>(Peek()))) {
    Advance();
  }
}

Status XmlLexer::LexName(std::string* name) {
  if (AtEnd() || !IsNameStartChar(Peek())) {
    return ErrorHere("expected a name");
  }
  name->clear();
  while (!AtEnd() && IsNameChar(Peek())) name->push_back(Advance());
  return Status::OK();
}

Status XmlLexer::Next(XmlToken* token) {
  *token = XmlToken();
  token->line = line_;
  token->column = column_;
  if (AtEnd()) {
    token->kind = XmlToken::Kind::kEof;
    return Status::OK();
  }
  if (Peek() == '<') {
    return LexMarkup(token);
  }
  // Character data runs until the next markup.
  size_t start = pos_;
  while (!AtEnd() && Peek() != '<') Advance();
  std::string_view raw = input_.substr(start, pos_ - start);
  Result<std::string> unescaped = UnescapeEntities(raw);
  if (!unescaped.ok()) return ErrorHere(unescaped.status().message());
  token->kind = XmlToken::Kind::kText;
  token->text = std::move(unescaped).value();
  return Status::OK();
}

Status XmlLexer::LexMarkup(XmlToken* token) {
  Advance();  // consume '<'
  if (AtEnd()) return ErrorHere("unexpected end after '<'");
  char c = Peek();
  if (c == '/') {
    Advance();
    return LexEndTag(token);
  }
  if (c == '?') {
    Advance();
    return LexProcessing(token);
  }
  if (c == '!') {
    Advance();
    if (Match('-')) {
      if (!Match('-')) return ErrorHere("malformed comment start");
      return LexComment(token);
    }
    if (!AtEnd() && Peek() == '[') {
      return LexCData(token);
    }
    return LexDoctype(token);
  }
  return LexStartTag(token);
}

Status XmlLexer::LexStartTag(XmlToken* token) {
  token->kind = XmlToken::Kind::kStartTag;
  GKS_RETURN_IF_ERROR(LexName(&token->name));
  while (true) {
    SkipWhitespace();
    if (AtEnd()) return ErrorHere("unterminated start tag");
    if (Match('>')) return Status::OK();
    if (Match('/')) {
      if (!Match('>')) return ErrorHere("expected '>' after '/'");
      token->self_closing = true;
      return Status::OK();
    }
    XmlAttribute attr;
    GKS_RETURN_IF_ERROR(LexName(&attr.name));
    SkipWhitespace();
    if (!Match('=')) return ErrorHere("expected '=' in attribute");
    SkipWhitespace();
    GKS_RETURN_IF_ERROR(LexAttributeValue(&attr.value));
    token->attributes.push_back(std::move(attr));
  }
}

Status XmlLexer::LexAttributeValue(std::string* value) {
  if (AtEnd() || (Peek() != '"' && Peek() != '\'')) {
    return ErrorHere("expected quoted attribute value");
  }
  char quote = Advance();
  size_t start = pos_;
  while (!AtEnd() && Peek() != quote) {
    if (Peek() == '<') return ErrorHere("'<' in attribute value");
    Advance();
  }
  if (AtEnd()) return ErrorHere("unterminated attribute value");
  std::string_view raw = input_.substr(start, pos_ - start);
  Advance();  // closing quote
  Result<std::string> unescaped = UnescapeEntities(raw);
  if (!unescaped.ok()) return ErrorHere(unescaped.status().message());
  *value = std::move(unescaped).value();
  return Status::OK();
}

Status XmlLexer::LexEndTag(XmlToken* token) {
  token->kind = XmlToken::Kind::kEndTag;
  GKS_RETURN_IF_ERROR(LexName(&token->name));
  SkipWhitespace();
  if (!Match('>')) return ErrorHere("expected '>' in end tag");
  return Status::OK();
}

Status XmlLexer::LexComment(XmlToken* token) {
  token->kind = XmlToken::Kind::kComment;
  size_t start = pos_;
  while (pos_ + 2 < input_.size() + 1) {
    if (AtEnd()) break;
    if (Peek() == '-' && pos_ + 2 < input_.size() && input_[pos_ + 1] == '-' &&
        input_[pos_ + 2] == '>') {
      token->text.assign(input_.substr(start, pos_ - start));
      Advance();
      Advance();
      Advance();
      return Status::OK();
    }
    Advance();
  }
  return ErrorHere("unterminated comment");
}

Status XmlLexer::LexCData(XmlToken* token) {
  // We have consumed "<!" and Peek() == '['.
  constexpr std::string_view kOpen = "[CDATA[";
  if (input_.substr(pos_, kOpen.size()) != kOpen) {
    return ErrorHere("malformed CDATA section");
  }
  for (size_t i = 0; i < kOpen.size(); ++i) Advance();
  token->kind = XmlToken::Kind::kCData;
  size_t start = pos_;
  while (!AtEnd()) {
    if (Peek() == ']' && pos_ + 2 < input_.size() && input_[pos_ + 1] == ']' &&
        input_[pos_ + 2] == '>') {
      token->text.assign(input_.substr(start, pos_ - start));
      Advance();
      Advance();
      Advance();
      return Status::OK();
    }
    Advance();
  }
  return ErrorHere("unterminated CDATA section");
}

Status XmlLexer::LexProcessing(XmlToken* token) {
  token->kind = XmlToken::Kind::kProcessing;
  GKS_RETURN_IF_ERROR(LexName(&token->name));
  size_t start = pos_;
  while (!AtEnd()) {
    if (Peek() == '?' && pos_ + 1 < input_.size() && input_[pos_ + 1] == '>') {
      token->text.assign(input_.substr(start, pos_ - start));
      Advance();
      Advance();
      return Status::OK();
    }
    Advance();
  }
  return ErrorHere("unterminated processing instruction");
}

Status XmlLexer::LexDoctype(XmlToken* token) {
  token->kind = XmlToken::Kind::kDoctype;
  // Consume the keyword (DOCTYPE, ENTITY, ...) and body up to the matching
  // '>' (internal subsets use nested '[' ... ']').
  size_t start = pos_;
  int bracket_depth = 0;
  while (!AtEnd()) {
    char c = Peek();
    if (c == '[') ++bracket_depth;
    if (c == ']') --bracket_depth;
    if (c == '>' && bracket_depth <= 0) {
      token->text.assign(input_.substr(start, pos_ - start));
      Advance();
      return Status::OK();
    }
    Advance();
  }
  return ErrorHere("unterminated <!...> declaration");
}

}  // namespace gks::xml
