#include "xml/dom.h"

#include <algorithm>

namespace gks::xml {

std::unique_ptr<DomNode> DomNode::Element(std::string name) {
  auto node = std::unique_ptr<DomNode>(new DomNode(Type::kElement));
  node->name_ = std::move(name);
  return node;
}

std::unique_ptr<DomNode> DomNode::Text(std::string text) {
  auto node = std::unique_ptr<DomNode>(new DomNode(Type::kText));
  node->text_ = std::move(text);
  return node;
}

void DomNode::AddAttribute(std::string name, std::string value) {
  attributes_.push_back({std::move(name), std::move(value)});
}

const std::string* DomNode::FindAttribute(std::string_view name) const {
  for (const XmlAttribute& attr : attributes_) {
    if (attr.name == name) return &attr.value;
  }
  return nullptr;
}

DomNode* DomNode::AddChild(std::unique_ptr<DomNode> child) {
  child->parent_ = this;
  children_.push_back(std::move(child));
  return children_.back().get();
}

DomNode* DomNode::AddChildElement(std::string name) {
  return AddChild(Element(std::move(name)));
}

DomNode* DomNode::AddTextChild(std::string text) {
  return AddChild(Text(std::move(text)));
}

DomNode* DomNode::AddLeaf(std::string name, std::string text) {
  DomNode* leaf = AddChildElement(std::move(name));
  leaf->AddTextChild(std::move(text));
  return leaf;
}

const DomNode* DomNode::FindChild(std::string_view name) const {
  for (const auto& child : children_) {
    if (child->is_element() && child->name() == name) return child.get();
  }
  return nullptr;
}

std::string DomNode::InnerText() const {
  if (is_text()) return text_;
  std::string out;
  for (const auto& child : children_) {
    out += child->InnerText();
  }
  return out;
}

size_t DomNode::SubtreeSize() const {
  size_t total = 1;
  for (const auto& child : children_) total += child->SubtreeSize();
  return total;
}

size_t DomNode::SubtreeDepth() const {
  size_t deepest = 0;
  for (const auto& child : children_) {
    deepest = std::max(deepest, 1 + child->SubtreeDepth());
  }
  return deepest;
}

}  // namespace gks::xml
