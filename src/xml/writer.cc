#include "xml/writer.h"

#include "xml/escape.h"

namespace gks::xml {
namespace {

void WriteNode(const DomNode& node, const WriterOptions& options, int depth,
               std::string* out) {
  auto indent = [&](int d) {
    if (options.indent) out->append(static_cast<size_t>(d) * 2, ' ');
  };

  if (node.is_text()) {
    indent(depth);
    out->append(EscapeText(node.text()));
    if (options.indent) out->push_back('\n');
    return;
  }

  indent(depth);
  out->push_back('<');
  out->append(node.name());
  for (const XmlAttribute& attr : node.attributes()) {
    out->push_back(' ');
    out->append(attr.name);
    out->append("=\"");
    out->append(EscapeAttribute(attr.value));
    out->push_back('"');
  }
  if (node.children().empty()) {
    out->append("/>");
    if (options.indent) out->push_back('\n');
    return;
  }

  // Single text child renders inline: <name>text</name>.
  if (node.children().size() == 1 && node.children()[0]->is_text()) {
    out->push_back('>');
    out->append(EscapeText(node.children()[0]->text()));
    out->append("</");
    out->append(node.name());
    out->push_back('>');
    if (options.indent) out->push_back('\n');
    return;
  }

  out->push_back('>');
  if (options.indent) out->push_back('\n');
  for (const auto& child : node.children()) {
    WriteNode(*child, options, depth + 1, out);
  }
  indent(depth);
  out->append("</");
  out->append(node.name());
  out->push_back('>');
  if (options.indent) out->push_back('\n');
}

}  // namespace

std::string WriteXml(const DomNode& node, const WriterOptions& options) {
  std::string out;
  if (options.declaration) out.append("<?xml version=\"1.0\"?>\n");
  WriteNode(node, options, 0, &out);
  return out;
}

std::string WriteXml(const DomDocument& document,
                     const WriterOptions& options) {
  if (document.empty()) return "";
  return WriteXml(*document.root(), options);
}

}  // namespace gks::xml
