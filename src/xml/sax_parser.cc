#include "xml/sax_parser.h"

#include <cctype>
#include <cstdio>
#include <memory>

namespace gks::xml {
namespace {

bool IsAllWhitespace(std::string_view text) {
  for (char c : text) {
    if (!std::isspace(static_cast<unsigned char>(c))) return false;
  }
  return true;
}

}  // namespace

Status ParseXml(std::string_view input, SaxHandler* handler,
                const SaxOptions& options) {
  XmlLexer lexer(input);
  std::vector<std::string> open_elements;
  bool seen_root = false;

  GKS_RETURN_IF_ERROR(handler->StartDocument());
  XmlToken token;
  while (true) {
    GKS_RETURN_IF_ERROR(lexer.Next(&token));
    switch (token.kind) {
      case XmlToken::Kind::kEof:
        if (!open_elements.empty()) {
          return Status::Corruption("unexpected end of document: <" +
                                    open_elements.back() + "> not closed");
        }
        if (!seen_root) {
          return Status::Corruption("document has no root element");
        }
        return handler->EndDocument();

      case XmlToken::Kind::kStartTag:
        if (open_elements.empty() && seen_root) {
          return Status::Corruption("multiple root elements (line " +
                                    std::to_string(token.line) + ")");
        }
        seen_root = true;
        GKS_RETURN_IF_ERROR(
            handler->StartElement(token.name, token.attributes));
        if (token.self_closing) {
          GKS_RETURN_IF_ERROR(handler->EndElement(token.name));
        } else {
          open_elements.push_back(token.name);
        }
        break;

      case XmlToken::Kind::kEndTag:
        if (open_elements.empty()) {
          return Status::Corruption("unmatched </" + token.name + "> at line " +
                                    std::to_string(token.line));
        }
        if (open_elements.back() != token.name) {
          return Status::Corruption("mismatched tag: expected </" +
                                    open_elements.back() + ">, found </" +
                                    token.name + "> at line " +
                                    std::to_string(token.line));
        }
        open_elements.pop_back();
        GKS_RETURN_IF_ERROR(handler->EndElement(token.name));
        break;

      case XmlToken::Kind::kText:
        if (open_elements.empty()) {
          if (IsAllWhitespace(token.text)) break;
          return Status::Corruption("text outside the root element at line " +
                                    std::to_string(token.line));
        }
        if (options.skip_whitespace_text && IsAllWhitespace(token.text)) {
          break;
        }
        GKS_RETURN_IF_ERROR(handler->Characters(token.text));
        break;

      case XmlToken::Kind::kCData:
        if (open_elements.empty()) {
          return Status::Corruption("CDATA outside the root element");
        }
        GKS_RETURN_IF_ERROR(handler->Characters(token.text));
        break;

      case XmlToken::Kind::kComment:
      case XmlToken::Kind::kProcessing:
      case XmlToken::Kind::kDoctype:
        break;  // structural noise: ignored
    }
  }
}

Status ReadFileToString(const std::string& path, std::string* contents) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "rb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot open " + path);
  }
  std::fseek(file.get(), 0, SEEK_END);
  long size = std::ftell(file.get());
  if (size < 0) return Status::IOError("cannot stat " + path);
  std::fseek(file.get(), 0, SEEK_SET);
  contents->resize(static_cast<size_t>(size));
  if (size > 0 &&
      std::fread(contents->data(), 1, static_cast<size_t>(size), file.get()) !=
          static_cast<size_t>(size)) {
    return Status::IOError("short read on " + path);
  }
  return Status::OK();
}

Status WriteStringToFile(const std::string& path, std::string_view contents) {
  std::unique_ptr<std::FILE, int (*)(std::FILE*)> file(
      std::fopen(path.c_str(), "wb"), &std::fclose);
  if (file == nullptr) {
    return Status::IOError("cannot create " + path);
  }
  if (!contents.empty() &&
      std::fwrite(contents.data(), 1, contents.size(), file.get()) !=
          contents.size()) {
    return Status::IOError("short write on " + path);
  }
  return Status::OK();
}

Status ParseXmlFile(const std::string& path, SaxHandler* handler,
                    const SaxOptions& options) {
  std::string contents;
  GKS_RETURN_IF_ERROR(ReadFileToString(path, &contents));
  return ParseXml(contents, handler, options);
}

}  // namespace gks::xml
