#ifndef GKS_XML_DOM_BUILDER_H_
#define GKS_XML_DOM_BUILDER_H_

#include <string>
#include <string_view>

#include "common/result.h"
#include "xml/dom.h"
#include "xml/sax_parser.h"

namespace gks::xml {

/// Parses an in-memory document into a DOM tree.
Result<DomDocument> ParseDom(std::string_view input,
                             const SaxOptions& options = SaxOptions());

/// Parses the file at `path` into a DOM tree.
Result<DomDocument> ParseDomFile(const std::string& path,
                                 const SaxOptions& options = SaxOptions());

}  // namespace gks::xml

#endif  // GKS_XML_DOM_BUILDER_H_
