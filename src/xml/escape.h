#ifndef GKS_XML_ESCAPE_H_
#define GKS_XML_ESCAPE_H_

#include <string>
#include <string_view>

#include "common/result.h"

namespace gks::xml {

/// Escapes text content: & < > become entity references.
std::string EscapeText(std::string_view text);

/// Escapes an attribute value for double-quoted output (adds " escaping).
std::string EscapeAttribute(std::string_view text);

/// Expands the five predefined entities (&amp; &lt; &gt; &apos; &quot;) and
/// decimal/hex character references (&#65; &#x41;) to UTF-8. Unknown entity
/// names are an error (Corruption) — GKS does not load external DTDs.
Result<std::string> UnescapeEntities(std::string_view text);

}  // namespace gks::xml

#endif  // GKS_XML_ESCAPE_H_
