#ifndef GKS_XML_WRITER_H_
#define GKS_XML_WRITER_H_

#include <string>

#include "xml/dom.h"

namespace gks::xml {

struct WriterOptions {
  /// Pretty-print with 2-space indentation; compact output otherwise.
  bool indent = true;
  /// Prepend an <?xml version="1.0"?> declaration.
  bool declaration = false;
};

/// Serializes `node` (and its subtree) back to XML text.
std::string WriteXml(const DomNode& node,
                     const WriterOptions& options = WriterOptions());

/// Serializes a whole document.
std::string WriteXml(const DomDocument& document,
                     const WriterOptions& options = WriterOptions());

}  // namespace gks::xml

#endif  // GKS_XML_WRITER_H_
