#ifndef GKS_XML_DOM_H_
#define GKS_XML_DOM_H_

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "xml/lexer.h"

namespace gks::xml {

/// In-memory tree node. The DOM exists for tests, brute-force oracles and
/// the synthetic data generators; the indexing path is purely streaming.
class DomNode {
 public:
  enum class Type { kElement, kText };

  static std::unique_ptr<DomNode> Element(std::string name);
  static std::unique_ptr<DomNode> Text(std::string text);

  DomNode(const DomNode&) = delete;
  DomNode& operator=(const DomNode&) = delete;

  Type type() const { return type_; }
  bool is_element() const { return type_ == Type::kElement; }
  bool is_text() const { return type_ == Type::kText; }

  /// Tag name (elements) — empty for text nodes.
  const std::string& name() const { return name_; }
  /// Character data (text nodes) — empty for elements.
  const std::string& text() const { return text_; }

  const std::vector<XmlAttribute>& attributes() const { return attributes_; }
  void AddAttribute(std::string name, std::string value);
  /// Returns the attribute value or nullptr when absent.
  const std::string* FindAttribute(std::string_view name) const;

  DomNode* parent() const { return parent_; }
  const std::vector<std::unique_ptr<DomNode>>& children() const {
    return children_;
  }

  /// Appends `child` and returns a borrowed pointer to it for chaining.
  DomNode* AddChild(std::unique_ptr<DomNode> child);
  /// Convenience: appends `<name>text</name>` and returns the new element.
  DomNode* AddChildElement(std::string name);
  DomNode* AddTextChild(std::string text);
  DomNode* AddLeaf(std::string name, std::string text);

  /// First child element with the given tag, or nullptr.
  const DomNode* FindChild(std::string_view name) const;

  /// Concatenated text of all descendant text nodes.
  std::string InnerText() const;

  /// Number of nodes in this subtree (this node included; text nodes count).
  size_t SubtreeSize() const;
  /// Longest root-to-leaf edge count within this subtree.
  size_t SubtreeDepth() const;

 private:
  explicit DomNode(Type type) : type_(type) {}

  Type type_;
  std::string name_;
  std::string text_;
  std::vector<XmlAttribute> attributes_;
  std::vector<std::unique_ptr<DomNode>> children_;
  DomNode* parent_ = nullptr;
};

/// Owns a parsed document: the root element plus nothing else (comments and
/// processing instructions are dropped at parse time).
class DomDocument {
 public:
  DomDocument() = default;
  explicit DomDocument(std::unique_ptr<DomNode> root)
      : root_(std::move(root)) {}

  DomDocument(DomDocument&&) = default;
  DomDocument& operator=(DomDocument&&) = default;

  const DomNode* root() const { return root_.get(); }
  DomNode* mutable_root() { return root_.get(); }
  bool empty() const { return root_ == nullptr; }

 private:
  std::unique_ptr<DomNode> root_;
};

}  // namespace gks::xml

#endif  // GKS_XML_DOM_H_
