#include "xml/escape.h"

#include <cstdint>

namespace gks::xml {
namespace {

// Appends the UTF-8 encoding of `code_point` to `out`. Returns false for
// values outside the Unicode scalar range.
bool AppendUtf8(uint32_t code_point, std::string* out) {
  if (code_point <= 0x7f) {
    out->push_back(static_cast<char>(code_point));
  } else if (code_point <= 0x7ff) {
    out->push_back(static_cast<char>(0xc0 | (code_point >> 6)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  } else if (code_point <= 0xffff) {
    if (code_point >= 0xd800 && code_point <= 0xdfff) return false;
    out->push_back(static_cast<char>(0xe0 | (code_point >> 12)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  } else if (code_point <= 0x10ffff) {
    out->push_back(static_cast<char>(0xf0 | (code_point >> 18)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 12) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | ((code_point >> 6) & 0x3f)));
    out->push_back(static_cast<char>(0x80 | (code_point & 0x3f)));
  } else {
    return false;
  }
  return true;
}

}  // namespace

std::string EscapeText(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

std::string EscapeAttribute(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

Result<std::string> UnescapeEntities(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (c != '&') {
      out.push_back(c);
      ++i;
      continue;
    }
    size_t semi = text.find(';', i + 1);
    if (semi == std::string_view::npos || semi - i > 12) {
      return Status::Corruption("unterminated entity reference");
    }
    std::string_view name = text.substr(i + 1, semi - i - 1);
    if (name == "amp") {
      out.push_back('&');
    } else if (name == "lt") {
      out.push_back('<');
    } else if (name == "gt") {
      out.push_back('>');
    } else if (name == "apos") {
      out.push_back('\'');
    } else if (name == "quot") {
      out.push_back('"');
    } else if (!name.empty() && name[0] == '#') {
      uint32_t code_point = 0;
      bool hex = name.size() > 1 && (name[1] == 'x' || name[1] == 'X');
      std::string_view digits = name.substr(hex ? 2 : 1);
      if (digits.empty()) return Status::Corruption("empty char reference");
      for (char d : digits) {
        uint32_t digit;
        if (d >= '0' && d <= '9') {
          digit = static_cast<uint32_t>(d - '0');
        } else if (hex && d >= 'a' && d <= 'f') {
          digit = static_cast<uint32_t>(d - 'a' + 10);
        } else if (hex && d >= 'A' && d <= 'F') {
          digit = static_cast<uint32_t>(d - 'A' + 10);
        } else {
          return Status::Corruption("bad character reference digit");
        }
        code_point = code_point * (hex ? 16 : 10) + digit;
        if (code_point > 0x10ffff) {
          return Status::Corruption("character reference out of range");
        }
      }
      if (!AppendUtf8(code_point, &out)) {
        return Status::Corruption("character reference out of range");
      }
    } else {
      return Status::Corruption("unknown entity: &" + std::string(name) + ";");
    }
    i = semi + 1;
  }
  return out;
}

}  // namespace gks::xml
