#include "xml/dom_builder.h"

#include <memory>
#include <vector>

namespace gks::xml {
namespace {

class DomBuildingHandler : public SaxHandler {
 public:
  Status StartElement(std::string_view name,
                      const std::vector<XmlAttribute>& attributes) override {
    auto element = DomNode::Element(std::string(name));
    for (const XmlAttribute& attr : attributes) {
      element->AddAttribute(attr.name, attr.value);
    }
    DomNode* raw = element.get();
    if (stack_.empty()) {
      root_ = std::move(element);
    } else {
      stack_.back()->AddChild(std::move(element));
    }
    stack_.push_back(raw);
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    stack_.pop_back();
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    stack_.back()->AddTextChild(std::string(text));
    return Status::OK();
  }

  std::unique_ptr<DomNode> TakeRoot() { return std::move(root_); }

 private:
  std::unique_ptr<DomNode> root_;
  std::vector<DomNode*> stack_;
};

}  // namespace

Result<DomDocument> ParseDom(std::string_view input,
                             const SaxOptions& options) {
  DomBuildingHandler handler;
  GKS_RETURN_IF_ERROR(ParseXml(input, &handler, options));
  return DomDocument(handler.TakeRoot());
}

Result<DomDocument> ParseDomFile(const std::string& path,
                                 const SaxOptions& options) {
  DomBuildingHandler handler;
  GKS_RETURN_IF_ERROR(ParseXmlFile(path, &handler, options));
  return DomDocument(handler.TakeRoot());
}

}  // namespace gks::xml
