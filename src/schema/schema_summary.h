#ifndef GKS_SCHEMA_SCHEMA_SUMMARY_H_
#define GKS_SCHEMA_SCHEMA_SUMMARY_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "index/xml_index.h"

namespace gks {

/// A DataGuide-style path summary inferred from the indexed instances: one
/// entry per distinct root-to-node *tag path*, with instance counts per
/// node category. This implements the paper's stated extension ("GKS can
/// be easily extended to take into account the XML schema to categorize
/// the nodes. This is part of our future work.", Sec. 2.2): the schema is
/// recovered from the data itself, then instance-level category outliers
/// (a <Course> that happens to have one student, a single-author
/// <article>) can be reconciled with the majority category of their path.
class SchemaSummary {
 public:
  struct PathInfo {
    std::vector<uint32_t> tag_path;  // interned tags, document root first
    uint64_t instances = 0;
    uint64_t attribute = 0;
    uint64_t repeating = 0;
    uint64_t entity = 0;
    uint64_t connecting = 0;
    uint64_t total_child_count = 0;  // for average fan-out reporting

    /// Majority-vote category flags: each positive category that holds for
    /// more than half of the instances (connecting if none does).
    uint8_t MajorityFlags() const;
  };

  /// Scans every categorized node of `index` (O(#nodes * depth)).
  static SchemaSummary Build(const XmlIndex& index);

  /// Info for an exact tag path, or nullptr.
  const PathInfo* Find(const std::vector<uint32_t>& tag_path) const;

  /// True if the majority of instances on this path are entity nodes.
  bool IsEntityPath(const std::vector<uint32_t>& tag_path) const;

  size_t path_count() const { return paths_.size(); }

  template <typename F>
  void ForEach(F f) const {
    for (const auto& [path, info] : paths_) f(info);
  }

  /// Indented DataGuide-style dump with instance counts and categories,
  /// e.g. "Course  x4  [EN (majority), RN]  avg-children=2.0".
  std::string ToString(const XmlIndex& index) const;

 private:
  std::map<std::vector<uint32_t>, PathInfo> paths_;
};

/// Reconciliation statistics returned by ApplySchemaCategorization.
struct SchemaReconciliation {
  uint64_t promoted_entities = 0;    // instance CN/RN -> +EN
  uint64_t promoted_attributes = 0;  // leaf instances aligned with AN paths
};

/// Upgrades instance-level category outliers to their path's majority
/// category (entity and attribute promotions only — demotions would lose
/// information). Returns how many nodes changed. The index's entityHash
/// view (NodeInfoTable::IsEntity) reflects the change immediately, so LCE
/// discovery and DI see the schema-reconciled categories.
SchemaReconciliation ApplySchemaCategorization(const SchemaSummary& summary,
                                               XmlIndex* index);

}  // namespace gks

#endif  // GKS_SCHEMA_SCHEMA_SUMMARY_H_
