#include "schema/schema_summary.h"

#include <cstdio>

#include "index/node_kind.h"

namespace gks {
namespace {

// Tag path of a node: the tags of every prefix of its Dewey id, skipping
// the bare document-id prefix (which names no element).
bool TagPathOf(const XmlIndex& index, DeweySpan id,
               std::vector<uint32_t>* path) {
  path->clear();
  for (uint32_t len = 2; len <= id.size; ++len) {
    const NodeInfo* info = index.nodes.Find(DeweySpan{id.data, len});
    if (info == nullptr) return false;
    path->push_back(info->tag_id);
  }
  return true;
}

}  // namespace

uint8_t SchemaSummary::PathInfo::MajorityFlags() const {
  uint8_t flags = 0;
  if (attribute * 2 > instances) flags |= kFlagAttribute;
  if (repeating * 2 > instances) flags |= kFlagRepeating;
  if (entity * 2 > instances) flags |= kFlagEntity;
  if (flags == 0) flags = kFlagConnecting;
  return flags;
}

SchemaSummary SchemaSummary::Build(const XmlIndex& index) {
  SchemaSummary summary;
  std::vector<uint32_t> path;
  index.nodes.ForEach([&](DeweySpan id, const NodeInfo& info) {
    if (!TagPathOf(index, id, &path)) return;
    PathInfo& entry = summary.paths_[path];
    if (entry.instances == 0) entry.tag_path = path;
    ++entry.instances;
    if (info.is_attribute()) ++entry.attribute;
    if (info.is_repeating()) ++entry.repeating;
    if (info.is_entity()) ++entry.entity;
    if (info.is_connecting()) ++entry.connecting;
    entry.total_child_count += info.child_count;
  });
  return summary;
}

const SchemaSummary::PathInfo* SchemaSummary::Find(
    const std::vector<uint32_t>& tag_path) const {
  auto it = paths_.find(tag_path);
  return it == paths_.end() ? nullptr : &it->second;
}

bool SchemaSummary::IsEntityPath(const std::vector<uint32_t>& tag_path) const {
  const PathInfo* info = Find(tag_path);
  return info != nullptr && (info->MajorityFlags() & kFlagEntity) != 0;
}

std::string SchemaSummary::ToString(const XmlIndex& index) const {
  std::string out;
  for (const auto& [path, info] : paths_) {
    out.append((path.size() - 1) * 2, ' ');
    out += index.nodes.TagName(path.back());
    char buf[96];
    double avg_children =
        info.instances > 0
            ? static_cast<double>(info.total_child_count) /
                  static_cast<double>(info.instances)
            : 0.0;
    std::snprintf(buf, sizeof(buf), "  x%llu  [%s]  avg-children=%.1f\n",
                  static_cast<unsigned long long>(info.instances),
                  NodeFlagsToString(info.MajorityFlags()).c_str(),
                  avg_children);
    out += buf;
  }
  return out;
}

SchemaReconciliation ApplySchemaCategorization(const SchemaSummary& summary,
                                               XmlIndex* index) {
  SchemaReconciliation stats;
  // Collect the promotions first: mutating while iterating the table would
  // invalidate the walk.
  std::vector<std::pair<std::vector<uint32_t>, uint8_t>> promotions;
  std::vector<uint32_t> path;
  index->nodes.ForEach([&](DeweySpan id, const NodeInfo& info) {
    if (!TagPathOf(*index, id, &path)) return;
    const SchemaSummary::PathInfo* entry = summary.Find(path);
    if (entry == nullptr) return;
    uint8_t majority = entry->MajorityFlags();
    uint8_t missing = 0;
    if ((majority & kFlagEntity) && !info.is_entity()) missing |= kFlagEntity;
    if ((majority & kFlagAttribute) && !info.is_attribute() &&
        !info.is_repeating() && info.child_count <= 1) {
      missing |= kFlagAttribute;
    }
    if (missing != 0) {
      promotions.emplace_back(
          std::vector<uint32_t>(id.data, id.data + id.size), missing);
    }
  });
  for (const auto& [components, flags] : promotions) {
    DeweySpan span{components.data(),
                   static_cast<uint32_t>(components.size())};
    if (index->nodes.AddFlags(span, flags)) {
      if (flags & kFlagEntity) ++stats.promoted_entities;
      if (flags & kFlagAttribute) ++stats.promoted_attributes;
    }
  }
  // Category flags feed ranking and DI: cached responses computed before
  // the reconciliation are stale.
  if (stats.promoted_entities + stats.promoted_attributes > 0) {
    ++index->epoch;
  }
  return stats;
}

}  // namespace gks
