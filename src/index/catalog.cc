#include "index/catalog.h"

#include <algorithm>

#include "common/varint.h"

namespace gks {

uint32_t Catalog::AddDocument(std::string name) {
  docs_.push_back(DocumentInfo{std::move(name), 0, 0, 0});
  return static_cast<uint32_t>(docs_.size() - 1);
}

uint32_t Catalog::MaxDepth() const {
  uint32_t depth = 0;
  for (const DocumentInfo& doc : docs_) depth = std::max(depth, doc.max_depth);
  return depth;
}

uint64_t Catalog::TotalElements() const {
  uint64_t total = 0;
  for (const DocumentInfo& doc : docs_) total += doc.element_count;
  return total;
}

void Catalog::EncodeTo(std::string* dst) const {
  PutVarint64(dst, docs_.size());
  for (const DocumentInfo& doc : docs_) {
    PutLengthPrefixed(dst, doc.name);
    PutVarint64(dst, doc.element_count);
    PutVarint64(dst, doc.text_bytes);
    PutVarint32(dst, doc.max_depth);
  }
}

Status Catalog::DecodeFrom(std::string_view* input, Catalog* out) {
  *out = Catalog();
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    DocumentInfo doc;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &doc.name));
    GKS_RETURN_IF_ERROR(GetVarint64(input, &doc.element_count));
    GKS_RETURN_IF_ERROR(GetVarint64(input, &doc.text_bytes));
    GKS_RETURN_IF_ERROR(GetVarint32(input, &doc.max_depth));
    out->docs_.push_back(std::move(doc));
  }
  return Status::OK();
}

}  // namespace gks
