#include "index/rt_index.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <set>
#include <utility>

#include "common/json_value.h"
#include "common/json_writer.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "index/segment_merge.h"
#include "index/serialization.h"

namespace gks {
namespace {

constexpr std::string_view kManifestFile = "MANIFEST";
constexpr int kManifestFormat = 1;

Status ReadSmallFile(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("'" + path + "' does not exist");
    }
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  char buf[1 << 14];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read '" + path + "' failed");
  return Status::OK();
}

/// write + fsync + rename + dir fsync: the manifest swap is atomic on
/// POSIX, so recovery sees either the old or the new segment set, never a
/// half-written one.
Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
  if (fd < 0) {
    return Status::IOError("create '" + tmp + "': " + std::strerror(errno));
  }
  std::string_view remaining = bytes;
  while (!remaining.empty()) {
    ssize_t n = ::write(fd, remaining.data(), remaining.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("write '" + tmp + "': " + std::strerror(errno));
    }
    remaining.remove_prefix(static_cast<size_t>(n));
  }
  bool sync_failed = ::fsync(fd) != 0;
  ::close(fd);
  if (sync_failed) {
    return Status::IOError("fsync '" + tmp + "': " + std::strerror(errno));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IOError("rename '" + tmp + "' -> '" + path + "': " +
                           std::strerror(errno));
  }
  return SyncDirOf(path);
}

Result<uint64_t> FileBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return Status::IOError("stat '" + path + "': " + std::strerror(errno));
  }
  return static_cast<uint64_t>(st.st_size);
}

std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return names;
  while (struct dirent* entry = ::readdir(d)) {
    std::string name = entry->d_name;
    if (name != "." && name != "..") names.push_back(std::move(name));
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

/// "wal-000007.log" -> 7; 0 when the name is not a wal file.
uint64_t WalSeqOf(const std::string& name) {
  if (name.rfind("wal-", 0) != 0 || name.size() < 9) return 0;
  size_t dot = name.find(".log");
  if (dot == std::string::npos || dot != name.size() - 4) return 0;
  uint64_t seq = 0;
  for (size_t i = 4; i < dot; ++i) {
    if (name[i] < '0' || name[i] > '9') return 0;
    seq = seq * 10 + static_cast<uint64_t>(name[i] - '0');
  }
  return seq;
}

}  // namespace

RtIndex::RtIndex(RtOptions options) : options_(std::move(options)) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  inserts_total_ = registry.GetCounter("gks.rt.inserts_total");
  deletes_total_ = registry.GetCounter("gks.rt.deletes_total");
  wal_records_total_ = registry.GetCounter("gks.rt.wal.records_total");
  wal_bytes_total_ = registry.GetCounter("gks.rt.wal.bytes_total");
  wal_rotations_total_ = registry.GetCounter("gks.rt.wal.rotations_total");
  wal_replayed_total_ =
      registry.GetCounter("gks.rt.wal.replayed_records_total");
  flushes_total_ = registry.GetCounter("gks.rt.flushes_total");
  flush_failures_total_ = registry.GetCounter("gks.rt.flush_failures_total");
  merges_total_ = registry.GetCounter("gks.rt.merges_total");
  purged_docs_total_ = registry.GetCounter("gks.rt.purged_docs_total");
  ram_docs_gauge_ = registry.GetGauge("gks.rt.ram_docs");
  ram_bytes_gauge_ = registry.GetGauge("gks.rt.ram_bytes");
  disk_segments_gauge_ = registry.GetGauge("gks.rt.disk_segments");
  tombstones_gauge_ = registry.GetGauge("gks.rt.tombstones");
}

RtIndex::~RtIndex() {
  if (bg_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(bg_mu_);
      bg_stop_ = true;
    }
    bg_cv_.notify_all();
    bg_.join();
  }
}

std::string RtIndex::PathIn(const std::string& file) const {
  return options_.dir + "/" + file;
}

std::string RtIndex::WalPath(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%06llu.log",
                static_cast<unsigned long long>(seq));
  return PathIn(buf);
}

std::string RtIndex::SegmentFileName(uint64_t seq) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "seg-%06llu",
                static_cast<unsigned long long>(seq));
  return buf;
}

Result<std::unique_ptr<RtIndex>> RtIndex::Open(RtOptions options) {
  if (options.dir.empty()) {
    return Status::InvalidArgument("RtOptions.dir must be set");
  }
  if (options.compact_every == 0) options.compact_every = 1;
  std::unique_ptr<RtIndex> index(new RtIndex(std::move(options)));
  GKS_RETURN_IF_ERROR(index->OpenInternal());
  if (index->options_.background) {
    index->bg_ = std::thread([raw = index.get()] { raw->BackgroundLoop(); });
  }
  return index;
}

Status RtIndex::LoadSegmentFile(const std::string& file,
                                uint64_t expected_base,
                                std::shared_ptr<const XmlIndex>* out) const {
  Result<XmlIndex> loaded = options_.mmap ? LoadIndexMapped(PathIn(file))
                                          : LoadIndex(PathIn(file));
  if (!loaded.ok()) return loaded.status();
  (void)expected_base;
  *out = std::make_shared<const XmlIndex>(std::move(*loaded));
  return Status::OK();
}

Status RtIndex::OpenInternal() {
  if (::mkdir(options_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("mkdir '" + options_.dir + "': " +
                           std::strerror(errno));
  }

  // Base index: immutable, doc ids [0, base_docs).
  if (!options_.base_index_path.empty()) {
    Result<XmlIndex> base = options_.mmap
                                ? LoadIndexMapped(options_.base_index_path)
                                : LoadIndex(options_.base_index_path);
    if (!base.ok()) return base.status();
    base_ = std::make_shared<const XmlIndex>(std::move(*base));
    base_docs_ = static_cast<uint32_t>(base_->catalog.document_count());
  }
  next_doc_id_ = base_docs_;

  // Manifest: the durable segment-set record.
  std::string manifest_bytes;
  Status manifest_status =
      ReadSmallFile(PathIn(std::string(kManifestFile)), &manifest_bytes);
  std::set<std::string> referenced;  // files the manifest keeps alive
  if (manifest_status.ok()) {
    GKS_ASSIGN_OR_RETURN(JsonValue manifest,
                         JsonValue::Parse(manifest_bytes));
    if (!manifest.is_object() ||
        manifest.Find("format") == nullptr ||
        manifest.Find("format")->GetInt() != kManifestFormat) {
      return Status::Corruption("unrecognized MANIFEST format in '" +
                                options_.dir + "'");
    }
    uint64_t manifest_base =
        static_cast<uint64_t>(manifest.Find("base_docs") != nullptr
                                  ? manifest.Find("base_docs")->GetInt()
                                  : 0);
    if (manifest_base != base_docs_) {
      return Status::InvalidArgument(
          "base index has " + std::to_string(base_docs_) +
          " documents but the MANIFEST was written against " +
          std::to_string(manifest_base) +
          " — the base file must not change under an RT directory");
    }
    if (const JsonValue* v = manifest.Find("next_doc_id")) {
      next_doc_id_ = static_cast<uint32_t>(v->GetInt());
    }
    if (const JsonValue* v = manifest.Find("wal_seq")) {
      manifest_wal_seq_ = static_cast<uint64_t>(v->GetInt());
    }
    if (const JsonValue* v = manifest.Find("next_segment_seq")) {
      next_segment_seq_ = static_cast<uint64_t>(v->GetInt());
    }
    if (const JsonValue* v = manifest.Find("deleted"); v && v->is_array()) {
      auto dead = std::make_shared<std::vector<uint32_t>>();
      for (const JsonValue& id : v->items()) {
        dead->push_back(static_cast<uint32_t>(id.GetInt()));
      }
      std::sort(dead->begin(), dead->end());
      deleted_ = std::move(dead);
    }
    if (const JsonValue* v = manifest.Find("segments"); v && v->is_array()) {
      for (const JsonValue& entry : v->items()) {
        DiskSegment segment;
        segment.file = entry.Find("file") ? entry.Find("file")->GetString()
                                          : "";
        segment.docstore =
            entry.Find("docstore") ? entry.Find("docstore")->GetString() : "";
        segment.doc_base = static_cast<uint32_t>(
            entry.Find("doc_base") ? entry.Find("doc_base")->GetInt() : 0);
        segment.doc_count = static_cast<uint32_t>(
            entry.Find("doc_count") ? entry.Find("doc_count")->GetInt() : 0);
        segment.seq = static_cast<uint64_t>(
            entry.Find("seq") ? entry.Find("seq")->GetInt() : 0);
        if (segment.file.empty()) {
          return Status::Corruption("MANIFEST segment entry without a file");
        }
        GKS_ASSIGN_OR_RETURN(segment.bytes, FileBytes(PathIn(segment.file)));
        GKS_RETURN_IF_ERROR(
            LoadSegmentFile(segment.file, segment.doc_base, &segment.index));
        referenced.insert(segment.file);
        if (!segment.docstore.empty()) referenced.insert(segment.docstore);
        disk_.push_back(std::move(segment));
      }
    }
  } else if (manifest_status.code() != StatusCode::kNotFound) {
    return manifest_status;
  }
  if (deleted_ == nullptr) {
    deleted_ = std::make_shared<const std::vector<uint32_t>>();
  }

  // Live-name map over the durable segment set (replay refines it).
  auto register_catalog = [this](const XmlIndex& index, uint32_t doc_base) {
    for (uint32_t i = 0; i < index.catalog.document_count(); ++i) {
      uint32_t id = doc_base + i;
      if (std::binary_search(deleted_->begin(), deleted_->end(), id)) {
        continue;
      }
      live_[index.catalog.document(i).name] = id;
    }
  };
  if (base_ != nullptr) register_catalog(*base_, 0);
  for (const DiskSegment& segment : disk_) {
    register_catalog(*segment.index, segment.doc_base);
  }

  // Cleanup: drop files a crashed flush/merge left behind — segment files
  // the manifest never adopted and WAL files it has already retired.
  for (const std::string& name : ListDir(options_.dir)) {
    if (name.rfind("seg-", 0) == 0 && referenced.count(name) == 0) {
      ::unlink(PathIn(name).c_str());
    } else if (uint64_t seq = WalSeqOf(name);
               seq != 0 && seq < manifest_wal_seq_) {
      ::unlink(PathIn(name).c_str());
    } else if (name.size() > 4 &&
               name.compare(name.size() - 4, 4, ".tmp") == 0) {
      ::unlink(PathIn(name).c_str());
    }
  }

  GKS_RETURN_IF_ERROR(Recover());
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    PublishLocked();
  }
  return Status::OK();
}

Status RtIndex::Recover() {
  TraceCollector collector("gks");
  ScopedSpan span("rt.wal.replay");

  // Every WAL at or past the manifest's seq participates, in order: a
  // crash between rotation and the manifest commit legitimately leaves
  // two live logs (docs/INDEXING.md § Crash recovery).
  std::vector<uint64_t> seqs;
  for (const std::string& name : ListDir(options_.dir)) {
    uint64_t seq = WalSeqOf(name);
    if (seq >= manifest_wal_seq_ && seq != 0) seqs.push_back(seq);
  }
  std::sort(seqs.begin(), seqs.end());

  active_wal_seq_ = manifest_wal_seq_;
  int64_t tail_valid_bytes = -1;
  for (size_t i = 0; i < seqs.size(); ++i) {
    Result<WalReplay> replay = ReplayWal(WalPath(seqs[i]));
    if (!replay.ok()) return replay.status();
    for (const WalRecord& record : replay->records) {
      GKS_RETURN_IF_ERROR(ApplyReplayRecord(record));
      ++replayed_records_;
      wal_replayed_total_->Increment();
    }
    span.AddItems(replay->records.size());
    span.AddBytes(replay->valid_bytes);
    active_wal_seq_ = seqs[i];
    if (i + 1 == seqs.size()) {
      tail_valid_bytes = static_cast<int64_t>(replay->valid_bytes);
    } else if (!replay->clean) {
      // A torn record in a non-final log means the rotation that created
      // the next log raced the crash in a way the protocol rules out.
      return Status::Corruption("wal '" + WalPath(seqs[i]) +
                                "' has a torn tail but is not the "
                                "newest log");
    }
  }

  GKS_ASSIGN_OR_RETURN(
      WalWriter writer,
      WalWriter::Open(WalPath(active_wal_seq_), options_.fsync,
                      tail_valid_bytes));
  wal_ = std::move(writer);
  return Status::OK();
}

Status RtIndex::ApplyReplayRecord(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (record.type == WalRecordType::kInsert) {
    RtDocument doc;
    doc.doc_id = record.doc_id;
    doc.name = record.name;
    doc.xml = record.xml;
    return ApplyInsertLocked(std::move(doc), /*replay=*/true);
  }
  // Delete: idempotent tombstone add keyed by the authoritative doc id.
  auto dead = std::make_shared<std::vector<uint32_t>>(*deleted_);
  auto it = std::lower_bound(dead->begin(), dead->end(), record.doc_id);
  if (it == dead->end() || *it != record.doc_id) {
    dead->insert(it, record.doc_id);
    deleted_ = std::move(dead);
  }
  auto live = live_.find(record.name);
  if (live != live_.end() && live->second == record.doc_id) {
    live_.erase(live);
  }
  return Status::OK();
}

Status RtIndex::ApplyInsertLocked(RtDocument doc, bool replay) {
  // A replayed stream can hold id gaps where a merge reserved a range or
  // a crashed reservation burned one; the live path breaks the window at
  // the same points (SealWindowLocked), so both walks build identical
  // segment runs — the replay-equals-live invariant the crash tests pin.
  if (!ram_docs_.empty() &&
      doc.doc_id != ram_docs_.back().doc_id + 1) {
    SealWindowLocked(/*rotate_wal=*/!replay);
  }
  Result<XmlIndex> micro = BuildSegmentIndex({doc});
  if (!micro.ok()) return micro.status();
  if (!replay) {
    WalRecord record;
    record.type = WalRecordType::kInsert;
    record.doc_id = doc.doc_id;
    record.name = doc.name;
    record.xml = doc.xml;
    GKS_RETURN_IF_ERROR(wal_->Append(record));
    wal_records_total_->Increment();
    wal_bytes_total_->Add(record.name.size() + record.xml.size());
  }
  live_[doc.name] = doc.doc_id;
  next_doc_id_ = std::max(next_doc_id_, doc.doc_id + 1);
  ram_docs_.push_back(std::move(doc));
  ram_micro_.push_back(
      std::make_shared<const XmlIndex>(std::move(*micro)));
  if (ram_micro_.size() >= options_.compact_every) {
    GKS_RETURN_IF_ERROR(CompactWindowLocked());
  }
  return Status::OK();
}

Status RtIndex::CompactWindowLocked() {
  // Deterministic rebuild of the whole window from its raw documents —
  // never an in-place mutation of a published index, so readers holding
  // older snapshots are untouched.
  Result<XmlIndex> accum = BuildSegmentIndex(ram_docs_);
  if (!accum.ok()) return accum.status();
  ram_accum_ = std::make_shared<const XmlIndex>(std::move(*accum));
  accum_docs_ = ram_docs_.size();
  ram_micro_.clear();
  return Status::OK();
}

std::vector<SegmentView> RtIndex::WindowViewsLocked() const {
  std::vector<SegmentView> views;
  if (accum_docs_ > 0 && ram_accum_ != nullptr) {
    views.push_back({ram_accum_, ram_docs_.front().doc_id,
                     static_cast<uint32_t>(accum_docs_), "ram-accum"});
  }
  for (size_t i = 0; i < ram_micro_.size(); ++i) {
    const RtDocument& doc = ram_docs_[accum_docs_ + i];
    views.push_back({ram_micro_[i], doc.doc_id, 1, "ram"});
  }
  return views;
}

void RtIndex::SealWindowLocked(bool rotate_wal) {
  if (ram_docs_.empty()) return;
  SealedRun run;
  run.views = WindowViewsLocked();
  run.docs = std::move(ram_docs_);
  sealed_.push_back(std::move(run));
  ram_docs_.clear();
  ram_micro_.clear();
  ram_accum_.reset();
  accum_docs_ = 0;
  if (rotate_wal) {
    // Best effort: a rotation failure keeps appending to the current log,
    // which only means recovery replays a little more.
    (void)RotateWalLocked();
  }
}

Status RtIndex::RotateWalLocked() {
  uint64_t next_seq = active_wal_seq_ + 1;
  GKS_ASSIGN_OR_RETURN(WalWriter writer,
                       WalWriter::Open(WalPath(next_seq), options_.fsync));
  wal_ = std::move(writer);
  active_wal_seq_ = next_seq;
  wal_rotations_total_->Increment();
  return Status::OK();
}

void RtIndex::PublishLocked() {
  auto snapshot = std::make_shared<SegmentSetSnapshot>();
  if (base_ != nullptr) {
    snapshot->segments.push_back({base_, 0, base_docs_, "base"});
  }
  for (const DiskSegment& segment : disk_) {
    snapshot->segments.push_back(
        {segment.index, segment.doc_base, segment.doc_count, segment.file});
  }
  for (const SealedRun& run : sealed_) {
    snapshot->segments.insert(snapshot->segments.end(), run.views.begin(),
                              run.views.end());
  }
  std::vector<SegmentView> window = WindowViewsLocked();
  snapshot->segments.insert(snapshot->segments.end(), window.begin(),
                            window.end());
  std::sort(snapshot->segments.begin(), snapshot->segments.end(),
            [](const SegmentView& a, const SegmentView& b) {
              return a.doc_base < b.doc_base;
            });
  snapshot->deleted = deleted_;
  snapshot->epoch = NextIndexEpoch();
  {
    std::lock_guard<std::mutex> lock(snapshot_mu_);
    snapshot_ = std::move(snapshot);
  }
  uint64_t ram_docs = 0;
  uint64_t ram_bytes = 0;
  for (const SealedRun& run : sealed_) {
    ram_docs += run.docs.size();
    for (const RtDocument& doc : run.docs) ram_bytes += doc.xml.size();
  }
  ram_docs += ram_docs_.size();
  for (const RtDocument& doc : ram_docs_) ram_bytes += doc.xml.size();
  ram_docs_gauge_->Set(static_cast<int64_t>(ram_docs));
  ram_bytes_gauge_->Set(static_cast<int64_t>(ram_bytes));
  disk_segments_gauge_->Set(static_cast<int64_t>(disk_.size()));
  tombstones_gauge_->Set(static_cast<int64_t>(deleted_->size()));
}

Result<uint32_t> RtIndex::Insert(std::string name, std::string xml) {
  ScopedSpan span("rt.commit");
  span.AddBytes(xml.size());
  std::lock_guard<std::mutex> lock(commit_mu_);
  if (live_.count(name) != 0) {
    return Status::AlreadyExists("document '" + name +
                                 "' already exists; delete it first");
  }
  RtDocument doc;
  doc.doc_id = next_doc_id_;
  doc.name = std::move(name);
  doc.xml = std::move(xml);
  GKS_RETURN_IF_ERROR(ApplyInsertLocked(std::move(doc), /*replay=*/false));
  inserts_total_->Increment();
  uint32_t id = next_doc_id_ - 1;
  PublishLocked();
  if (FlushDueLocked()) PokeBackground();
  return id;
}

Result<bool> RtIndex::Delete(const std::string& name) {
  ScopedSpan span("rt.commit");
  std::lock_guard<std::mutex> lock(commit_mu_);
  auto it = live_.find(name);
  if (it == live_.end()) return false;
  uint32_t doc_id = it->second;
  WalRecord record;
  record.type = WalRecordType::kDelete;
  record.doc_id = doc_id;
  record.name = name;
  GKS_RETURN_IF_ERROR(wal_->Append(record));
  wal_records_total_->Increment();
  wal_bytes_total_->Add(record.name.size());
  auto dead = std::make_shared<std::vector<uint32_t>>(*deleted_);
  dead->insert(std::lower_bound(dead->begin(), dead->end(), doc_id), doc_id);
  deleted_ = std::move(dead);
  live_.erase(it);
  deletes_total_->Increment();
  PublishLocked();
  return true;
}

bool RtIndex::FlushDueLocked() const {
  if (!sealed_.empty()) return true;
  if (ram_docs_.size() >= options_.flush_docs) return true;
  size_t bytes = 0;
  for (const RtDocument& doc : ram_docs_) bytes += doc.xml.size();
  return bytes >= options_.flush_bytes;
}

Status RtIndex::Flush() {
  return DoFlush();
}

Status RtIndex::DoFlush() {
  std::lock_guard<std::mutex> flush_lock(flush_mu_);
  std::vector<SealedRun> runs;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    SealWindowLocked(/*rotate_wal=*/true);
    if (sealed_.empty()) return Status::OK();
    runs = sealed_;  // copy: the sealed runs stay searchable until swap
  }

  TraceCollector collector("gks");
  Status status = [&]() -> Status {
    ScopedSpan span("rt.flush");
    // Build every sealed run into its own immutable segment. The builds
    // run outside commit_mu_, so inserts keep committing meanwhile.
    std::vector<DiskSegment> built;
    for (SealedRun& run : runs) {
      GKS_ASSIGN_OR_RETURN(XmlIndex index, BuildSegmentIndex(run.docs));
      uint64_t seq;
      {
        std::lock_guard<std::mutex> lock(commit_mu_);
        seq = next_segment_seq_++;
      }
      DiskSegment segment;
      segment.seq = seq;
      segment.file = SegmentFileName(seq) + ".gksidx";
      segment.docstore = SegmentFileName(seq) + ".docs";
      segment.doc_base = run.docs.front().doc_id;
      segment.doc_count = static_cast<uint32_t>(run.docs.size());
      GKS_RETURN_IF_ERROR(SaveIndex(index, PathIn(segment.file)));
      GKS_RETURN_IF_ERROR(WriteDocstore(PathIn(segment.docstore), run.docs));
      GKS_RETURN_IF_ERROR(SyncDirOf(PathIn(segment.file)));
      GKS_ASSIGN_OR_RETURN(segment.bytes, FileBytes(PathIn(segment.file)));
      GKS_RETURN_IF_ERROR(
          LoadSegmentFile(segment.file, segment.doc_base, &segment.index));
      span.AddItems(segment.doc_count);
      span.AddBytes(segment.bytes);
      built.push_back(std::move(segment));
    }

    uint64_t retire_below;
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      // Adopt the segments, drop the sealed runs they replace, make it
      // durable. New commits since the seal live in the rotated WAL,
      // which is exactly what the manifest now points at.
      sealed_.erase(sealed_.begin(),
                    sealed_.begin() + static_cast<long>(runs.size()));
      for (DiskSegment& segment : built) disk_.push_back(std::move(segment));
      manifest_wal_seq_ = active_wal_seq_;
      GKS_RETURN_IF_ERROR(WriteManifestLocked());
      ++flushes_;
      PublishLocked();
      retire_below = manifest_wal_seq_;
    }
    // Only now is the old WAL redundant.
    for (const std::string& name : ListDir(options_.dir)) {
      uint64_t seq = WalSeqOf(name);
      if (seq != 0 && seq < retire_below) ::unlink(PathIn(name).c_str());
    }
    flushes_total_->Increment();
    return Status::OK();
  }();
  if (!status.ok()) flush_failures_total_->Increment();
  return status;
}

Status RtIndex::MaybeMerge() {
  return DoMerge();
}

Status RtIndex::DoMerge() {
  if (options_.merge_fanout < 2) return Status::OK();
  std::lock_guard<std::mutex> flush_lock(flush_mu_);

  std::vector<DiskSegment> inputs;
  std::vector<uint32_t> tombstones_at_pick;
  uint32_t new_base = 0;
  uint64_t expected_survivors = 0;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    std::vector<uint64_t> bytes;
    for (const DiskSegment& segment : disk_) bytes.push_back(segment.bytes);
    std::vector<size_t> picked =
        PickMergeInputs(bytes, options_.merge_fanout);
    if (picked.empty()) return Status::OK();
    for (size_t i : picked) inputs.push_back(disk_[i]);
    tombstones_at_pick = *deleted_;
    for (const DiskSegment& input : inputs) {
      for (uint32_t id = input.doc_base;
           id < input.doc_base + input.doc_count; ++id) {
        if (!std::binary_search(tombstones_at_pick.begin(),
                                tombstones_at_pick.end(), id)) {
          ++expected_survivors;
        }
      }
    }
    // The RAM window must not interleave with the reserved id range, or
    // its doc ids would stop being contiguous — seal it first (cheap: no
    // IO under the lock; the runs flush on the next DoFlush).
    SealWindowLocked(/*rotate_wal=*/true);
    new_base = next_doc_id_;
    next_doc_id_ += static_cast<uint32_t>(expected_survivors);
  }

  TraceCollector collector("gks");
  ScopedSpan span("rt.merge");

  std::vector<std::vector<RtDocument>> docstores;
  for (const DiskSegment& input : inputs) {
    GKS_ASSIGN_OR_RETURN(std::vector<RtDocument> docs,
                         ReadDocstore(PathIn(input.docstore)));
    docstores.push_back(std::move(docs));
  }
  std::vector<std::pair<uint32_t, uint32_t>> id_map_pairs;
  std::vector<RtDocument> merged = MergeDocstores(
      docstores, tombstones_at_pick, new_base, &id_map_pairs);

  DiskSegment output;
  bool has_output = !merged.empty();
  if (has_output) {
    GKS_ASSIGN_OR_RETURN(XmlIndex index, BuildSegmentIndex(merged));
    uint64_t seq;
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      seq = next_segment_seq_++;
    }
    output.seq = seq;
    output.file = SegmentFileName(seq) + ".gksidx";
    output.docstore = SegmentFileName(seq) + ".docs";
    output.doc_base = new_base;
    output.doc_count = static_cast<uint32_t>(merged.size());
    GKS_RETURN_IF_ERROR(SaveIndex(index, PathIn(output.file)));
    GKS_RETURN_IF_ERROR(WriteDocstore(PathIn(output.docstore), merged));
    GKS_RETURN_IF_ERROR(SyncDirOf(PathIn(output.file)));
    GKS_ASSIGN_OR_RETURN(output.bytes, FileBytes(PathIn(output.file)));
    GKS_RETURN_IF_ERROR(
        LoadSegmentFile(output.file, output.doc_base, &output.index));
    span.AddItems(output.doc_count);
    span.AddBytes(output.bytes);
  }

  std::unordered_map<uint32_t, uint32_t> id_map(id_map_pairs.begin(),
                                                id_map_pairs.end());
  std::vector<std::string> retired_files;
  uint64_t purged = 0;
  {
    std::lock_guard<std::mutex> lock(commit_mu_);
    auto in_inputs = [&](uint32_t id) {
      for (const DiskSegment& input : inputs) {
        if (id >= input.doc_base && id < input.doc_base + input.doc_count) {
          return true;
        }
      }
      return false;
    };
    // Retire the inputs, adopt the output.
    std::set<uint64_t> input_seqs;
    for (const DiskSegment& input : inputs) input_seqs.insert(input.seq);
    std::vector<DiskSegment> remaining;
    for (DiskSegment& segment : disk_) {
      if (input_seqs.count(segment.seq) != 0) {
        retired_files.push_back(segment.file);
        retired_files.push_back(segment.docstore);
      } else {
        remaining.push_back(std::move(segment));
      }
    }
    disk_ = std::move(remaining);
    if (has_output) disk_.push_back(std::move(output));
    // Translate tombstones: survivors deleted while the merge ran keep
    // their tombstone under the new id; documents the merge purged (dead
    // at pick time) leave the set for good. Names map the same way.
    auto dead = std::make_shared<std::vector<uint32_t>>();
    for (uint32_t id : *deleted_) {
      if (!in_inputs(id)) {
        dead->push_back(id);
      } else if (auto it = id_map.find(id); it != id_map.end()) {
        dead->push_back(it->second);
      } else {
        ++purged;
      }
    }
    std::sort(dead->begin(), dead->end());
    deleted_ = std::move(dead);
    for (auto& [name, id] : live_) {
      if (auto it = id_map.find(id); it != id_map.end()) id = it->second;
    }
    purged_docs_ += purged;
    ++merges_;
    GKS_RETURN_IF_ERROR(WriteManifestLocked());
    PublishLocked();
  }
  for (const std::string& file : retired_files) {
    if (!file.empty()) ::unlink(PathIn(file).c_str());
  }
  merges_total_->Increment();
  purged_docs_total_->Add(purged);
  return Status::OK();
}

Status RtIndex::WriteManifestLocked() {
  JsonWriter json;
  json.BeginObject();
  json.Key("format").Int(kManifestFormat);
  json.Key("base_docs").UInt(base_docs_);
  json.Key("next_doc_id").UInt(next_doc_id_);
  json.Key("wal_seq").UInt(manifest_wal_seq_);
  json.Key("next_segment_seq").UInt(next_segment_seq_);
  json.Key("deleted").BeginArray();
  for (uint32_t id : *deleted_) json.UInt(id);
  json.EndArray();
  json.Key("segments").BeginArray();
  for (const DiskSegment& segment : disk_) {
    json.BeginObject();
    json.Key("seq").UInt(segment.seq);
    json.Key("file").String(segment.file);
    json.Key("docstore").String(segment.docstore);
    json.Key("doc_base").UInt(segment.doc_base);
    json.Key("doc_count").UInt(segment.doc_count);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return WriteFileAtomic(PathIn(std::string(kManifestFile)), json.Take());
}

std::shared_ptr<const SegmentSetSnapshot> RtIndex::snapshot() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_;
}

uint64_t RtIndex::epoch() const {
  std::lock_guard<std::mutex> lock(snapshot_mu_);
  return snapshot_ != nullptr ? snapshot_->epoch : 0;
}

RtStats RtIndex::Stats() const {
  std::lock_guard<std::mutex> lock(commit_mu_);
  RtStats stats;
  for (const SealedRun& run : sealed_) {
    stats.ram_docs += run.docs.size();
    for (const RtDocument& doc : run.docs) stats.ram_bytes += doc.xml.size();
  }
  stats.ram_docs += ram_docs_.size();
  for (const RtDocument& doc : ram_docs_) stats.ram_bytes += doc.xml.size();
  stats.disk_segments = disk_.size();
  stats.tombstones = deleted_->size();
  stats.live_docs = live_.size();
  stats.next_doc_id = next_doc_id_;
  stats.wal_records = wal_ ? wal_->records() : 0;
  stats.replayed_records = replayed_records_;
  stats.flushes = flushes_;
  stats.merges = merges_;
  stats.purged_docs = purged_docs_;
  return stats;
}

void RtIndex::PokeBackground() {
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    bg_poked_ = true;
  }
  bg_cv_.notify_one();
}

void RtIndex::BackgroundLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(bg_mu_);
      bg_cv_.wait_for(lock, std::chrono::milliseconds(200),
                      [this] { return bg_stop_ || bg_poked_; });
      if (bg_stop_) return;
      bg_poked_ = false;
    }
    bool due;
    {
      std::lock_guard<std::mutex> lock(commit_mu_);
      due = FlushDueLocked();
    }
    if (due) {
      if (Status status = DoFlush(); !status.ok()) {
        std::fprintf(stderr, "gks-rt: flush failed: %s\n",
                     status.ToString().c_str());
        continue;
      }
      if (Status status = DoMerge(); !status.ok()) {
        std::fprintf(stderr, "gks-rt: merge failed: %s\n",
                     status.ToString().c_str());
      }
    }
  }
}

}  // namespace gks
