#ifndef GKS_INDEX_NODE_KIND_H_
#define GKS_INDEX_NODE_KIND_H_

#include <cstdint>
#include <string>

namespace gks {

/// Node categories from the paper's categorization model (Sec. 2.2).
/// Stored as flags because a node can be an entity node *and* a repeating
/// node at the same time (e.g. <Course> in Figure 2(a)).
enum NodeFlags : uint8_t {
  kFlagNone = 0,
  kFlagAttribute = 1 << 0,   // AN: single text child, no same-tag sibling
  kFlagRepeating = 1 << 1,   // RN: has a same-tag sibling
  kFlagEntity = 1 << 2,      // EN: LCA of repeating group + free attribute(s)
  kFlagConnecting = 1 << 3,  // CN: none of the above
};

/// Human-readable category string ("EN+RN" etc.) for debug output.
std::string NodeFlagsToString(uint8_t flags);

/// Sentinel for "no attribute value stored".
inline constexpr uint32_t kNoValue = 0xffffffffu;

/// Per-node metadata kept by the index: the category flags, the number of
/// direct children (elements + text segments — used by the potential-flow
/// ranking), the interned tag name, and (attribute nodes only) the interned
/// text value used by DI discovery.
struct NodeInfo {
  uint8_t flags = kFlagNone;
  uint32_t child_count = 0;
  uint32_t tag_id = 0;
  uint32_t value_id = kNoValue;

  bool is_attribute() const { return (flags & kFlagAttribute) != 0; }
  bool is_repeating() const { return (flags & kFlagRepeating) != 0; }
  bool is_entity() const { return (flags & kFlagEntity) != 0; }
  bool is_connecting() const { return (flags & kFlagConnecting) != 0; }
};

}  // namespace gks

#endif  // GKS_INDEX_NODE_KIND_H_
