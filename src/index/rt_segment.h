#ifndef GKS_INDEX_RT_SEGMENT_H_
#define GKS_INDEX_RT_SEGMENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/xml_index.h"

namespace gks {

/// Real-time segment building blocks (docs/INDEXING.md).
///
/// A "segment" is an ordinary immutable XmlIndex covering a contiguous
/// range of global Dewey document ids: the segment's catalog is local
/// (dense from 0) while its Dewey ids carry the global offset, so node
/// ids from different segments never collide and the searcher can merge
/// ranked results across segments by plain id comparison.

/// One document as the RT engine stores it: the global Dewey doc id it
/// was assigned at commit, its catalog name, and the raw XML. The raw
/// text is the unit of durability (WAL) and of deterministic rebuilds
/// (compaction, flush, merge) — index bytes are always derived state.
struct RtDocument {
  uint32_t doc_id = 0;
  std::string name;
  std::string xml;

  bool operator==(const RtDocument& other) const {
    return doc_id == other.doc_id && name == other.name && xml == other.xml;
  }
};

/// Builds an immutable segment index over `docs`. The documents must be
/// sorted by doc_id and contiguous (IndexBuilder assigns consecutive ids
/// from `first_doc_id`); deleted documents are included — tombstones mask
/// them at search time, and only a merge renumbers them away. The build
/// is deterministic: the same documents always produce byte-identical
/// serialized segments, which is what the replay-then-flush crash test
/// pins (docs/INDEXING.md § Crash recovery).
Result<XmlIndex> BuildSegmentIndex(const std::vector<RtDocument>& docs);

/// Sidecar docstore file ("GKSDOC01"): magic, then an LZ-wrapped payload
/// of varint doc_count followed by per-document (varint doc_id,
/// length-prefixed name, length-prefixed xml). Each flushed segment keeps
/// one next to its index file so merges can rebuild surviving documents
/// from source — index sections alone cannot reproduce the original XML
/// (tokenized, stemmed, stop-worded).
Status WriteDocstore(const std::string& path,
                     const std::vector<RtDocument>& docs);
Result<std::vector<RtDocument>> ReadDocstore(const std::string& path);

/// One member of a published segment set.
struct SegmentView {
  std::shared_ptr<const XmlIndex> index;
  uint32_t doc_base = 0;   // global Dewey id of the segment's document 0
  uint32_t doc_count = 0;  // catalog size (includes tombstoned docs)
  std::string label;       // "base" | "ram" | "ram-accum" | segment file
};

/// An immutable snapshot of the whole searchable state: the segment set,
/// the tombstone set, and the epoch the result cache keys on. Published
/// behind a shared_ptr — queries copy the pointer once at admission and
/// the retired snapshot stays alive until its last query finishes,
/// exactly like the single-index reload path (src/server/index_state.h).
struct SegmentSetSnapshot {
  std::vector<SegmentView> segments;  // sorted by doc_base, ranges disjoint
  /// Sorted global doc ids masked from every search. Shared across
  /// snapshots untouched by deletes, so publishing an insert is O(1).
  std::shared_ptr<const std::vector<uint32_t>> deleted;
  uint64_t epoch = 0;

  bool IsDeleted(uint32_t doc_id) const;
  /// The segment whose id range contains `doc_id`; nullptr when none.
  const SegmentView* SegmentFor(uint32_t doc_id) const;
  /// Catalog entry for a global doc id; nullptr when unknown.
  const Catalog::DocumentInfo* Document(uint32_t doc_id) const;

  uint64_t TotalDocuments() const;  // catalog entries incl. tombstones
  uint64_t LiveDocuments() const;
};

}  // namespace gks

#endif  // GKS_INDEX_RT_SEGMENT_H_
