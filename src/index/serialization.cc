#include "index/serialization.h"

#include "xml/sax_parser.h"

namespace gks {
namespace {

constexpr std::string_view kMagic = "GKSIDX01";

}  // namespace

std::string SerializeIndex(const XmlIndex& index) {
  std::string out;
  out.append(kMagic);
  index.catalog.EncodeTo(&out);
  index.nodes.EncodeTo(&out);
  index.attributes.EncodeTo(&out);
  index.inverted.EncodeTo(&out);
  return out;
}

Result<XmlIndex> DeserializeIndex(std::string_view bytes) {
  if (bytes.size() < kMagic.size() ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("not a GKS index file (bad magic)");
  }
  bytes.remove_prefix(kMagic.size());
  XmlIndex index;
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&bytes, &index.catalog));
  GKS_RETURN_IF_ERROR(NodeInfoTable::DecodeFrom(&bytes, &index.nodes));
  GKS_RETURN_IF_ERROR(AttrDirectory::DecodeFrom(&bytes, &index.attributes));
  GKS_RETURN_IF_ERROR(InvertedIndex::DecodeFrom(&bytes, &index.inverted));
  if (!bytes.empty()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  return index;
}

Status SaveIndex(const XmlIndex& index, const std::string& path) {
  return xml::WriteStringToFile(path, SerializeIndex(index));
}

Result<XmlIndex> LoadIndex(const std::string& path) {
  std::string bytes;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &bytes));
  return DeserializeIndex(bytes);
}

}  // namespace gks
