#include "index/serialization.h"

#include "common/metrics.h"
#include "common/timer.h"
#include "xml/sax_parser.h"

namespace gks {
namespace {

constexpr std::string_view kMagic = "GKSIDX01";

}  // namespace

std::string SerializeIndex(const XmlIndex& index) {
  WallTimer timer;
  std::string out;
  out.append(kMagic);
  index.catalog.EncodeTo(&out);
  index.nodes.EncodeTo(&out);
  index.attributes.EncodeTo(&out);
  index.inverted.EncodeTo(&out);
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("gks.index.serialize.bytes_total")->Add(out.size());
  registry.GetHistogram("gks.index.serialize.latency_ms")
      ->Observe(timer.ElapsedMillis());
  return out;
}

Result<XmlIndex> DeserializeIndex(std::string_view bytes) {
  WallTimer timer;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("gks.index.deserialize.bytes_total")
      ->Add(bytes.size());
  if (bytes.size() < kMagic.size() ||
      bytes.substr(0, kMagic.size()) != kMagic) {
    return Status::Corruption("not a GKS index file (bad magic)");
  }
  bytes.remove_prefix(kMagic.size());
  XmlIndex index;
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&bytes, &index.catalog));
  GKS_RETURN_IF_ERROR(NodeInfoTable::DecodeFrom(&bytes, &index.nodes));
  GKS_RETURN_IF_ERROR(AttrDirectory::DecodeFrom(&bytes, &index.attributes));
  GKS_RETURN_IF_ERROR(InvertedIndex::DecodeFrom(&bytes, &index.inverted));
  if (!bytes.empty()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  registry.GetHistogram("gks.index.deserialize.latency_ms")
      ->Observe(timer.ElapsedMillis());
  return index;
}

Status SaveIndex(const XmlIndex& index, const std::string& path) {
  return xml::WriteStringToFile(path, SerializeIndex(index));
}

Result<XmlIndex> LoadIndex(const std::string& path) {
  std::string bytes;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &bytes));
  return DeserializeIndex(bytes);
}

}  // namespace gks
