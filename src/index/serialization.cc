#include "index/serialization.h"

#include <algorithm>
#include <cstring>

#include "common/lz.h"
#include "common/metrics.h"
#include "common/mmap_file.h"
#include "common/timer.h"
#include "xml/sax_parser.h"

namespace gks {
namespace {

constexpr std::string_view kMagicV1 = "GKSIDX01";
constexpr std::string_view kMagicV2 = "GKSIDX02";

// v2 section ids, in on-disk order.
enum SectionId : uint32_t {
  kSectionCatalog = 1,
  kSectionNodes = 2,
  kSectionAttributes = 3,
  kSectionInverted = 4,
  kSectionRankBounds = 5,
};

constexpr uint32_t kFlagLz = 1u << 0;

const char* SectionName(uint32_t id) {
  switch (id) {
    case kSectionCatalog:
      return "catalog";
    case kSectionNodes:
      return "nodes";
    case kSectionAttributes:
      return "attributes";
    case kSectionInverted:
      return "inverted";
    case kSectionRankBounds:
      return "rank_bounds";
    default:
      return "unknown";
  }
}

void PutFixed32(std::string* dst, uint32_t v) {
  for (int i = 0; i < 4; ++i) dst->push_back(static_cast<char>(v >> (8 * i)));
}

void PutFixed64(std::string* dst, uint64_t v) {
  for (int i = 0; i < 8; ++i) dst->push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetFixed32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetFixed64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

struct SectionEntry {
  uint32_t id = 0;
  uint32_t flags = 0;
  uint64_t offset = 0;
  uint64_t length = 0;

  bool lz() const { return (flags & kFlagLz) != 0; }
  std::string_view PayloadIn(std::string_view file) const {
    return file.substr(offset, length);
  }
};

constexpr size_t kSectionEntryBytes = 24;  // u32 id + u32 flags + u64 + u64

// Parses and validates the v2 section table. `file` is the whole file
// including the magic.
Status ParseV2SectionTable(std::string_view file,
                           std::vector<SectionEntry>* out) {
  size_t pos = kMagicV2.size();
  if (file.size() < pos + 4) {
    return Status::Corruption("v2 index truncated in section count");
  }
  uint32_t count = GetFixed32(file.data() + pos);
  pos += 4;
  if (count > 1024) {
    return Status::Corruption("implausible v2 section count");
  }
  if (file.size() < pos + count * kSectionEntryBytes) {
    return Status::Corruption("v2 index truncated in section table");
  }
  const size_t header_end = pos + count * kSectionEntryBytes;
  out->clear();
  out->reserve(count);
  uint64_t covered_end = header_end;
  for (uint32_t i = 0; i < count; ++i) {
    const char* p = file.data() + pos + i * kSectionEntryBytes;
    SectionEntry entry;
    entry.id = GetFixed32(p);
    entry.flags = GetFixed32(p + 4);
    entry.offset = GetFixed64(p + 8);
    entry.length = GetFixed64(p + 16);
    if (entry.offset < header_end || entry.offset > file.size() ||
        entry.length > file.size() - entry.offset) {
      return Status::Corruption("v2 section '" +
                                std::string(SectionName(entry.id)) +
                                "' extends past end of file");
    }
    covered_end = std::max(covered_end, entry.offset + entry.length);
    out->push_back(entry);
  }
  if (covered_end != file.size()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  return Status::OK();
}

// Finds section `id` in the table, or nullptr when absent. For sections
// that are optional by design (rank_bounds: pre-PR 7 v2 files lack it).
const SectionEntry* FindOptionalSection(const std::vector<SectionEntry>& table,
                                        uint32_t id) {
  for (const SectionEntry& entry : table) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

// Finds the (required) section `id` in the table.
Status FindSection(const std::vector<SectionEntry>& table, uint32_t id,
                   SectionEntry* out) {
  for (const SectionEntry& entry : table) {
    if (entry.id == id) {
      *out = entry;
      return Status::OK();
    }
  }
  return Status::Corruption("v2 index missing section '" +
                            std::string(SectionName(id)) + "'");
}

// Unwraps an LZ-flagged payload into `*storage` (left untouched for raw
// sections) and points `*payload` at the decodable bytes.
Status UnwrapSection(std::string_view raw, bool lz, std::string* storage,
                     std::string_view* payload) {
  if (!lz) {
    *payload = raw;
    return Status::OK();
  }
  storage->clear();
  GKS_RETURN_IF_ERROR(LzDecompress(raw, storage));
  *payload = *storage;
  return Status::OK();
}

std::string SerializeIndexV1(const XmlIndex& index) {
  std::string out;
  out.append(kMagicV1);
  index.catalog.EncodeTo(&out);
  index.nodes.EncodeTo(&out);
  index.attributes.EncodeTo(&out);
  index.inverted.EncodeTo(&out);
  return out;
}

std::string SerializeIndexV2(const XmlIndex& index, bool include_bounds) {
  // Encode each payload first, then lay the file out as
  // magic | count | table | payloads.
  std::string catalog;
  index.catalog.EncodeTo(&catalog);

  std::string nodes_raw;
  index.nodes.EncodeTo(&nodes_raw);
  std::string nodes;
  LzCompress(nodes_raw, &nodes);

  std::string attrs_raw;
  index.attributes.EncodeTo(&attrs_raw);
  std::string attrs;
  LzCompress(attrs_raw, &attrs);

  std::string inverted;
  index.inverted.EncodeToBlocks(&inverted);

  // Raw like the inverted section: the varint triples are already dense,
  // and top-k evaluation reads them straight from the mapping.
  std::string rank_bounds;
  if (include_bounds) {
    index.inverted.EncodeRankBoundsTo(index.nodes, &rank_bounds);
  }

  struct Pending {
    uint32_t id;
    uint32_t flags;
    const std::string* payload;
  };
  std::vector<Pending> sections = {
      {kSectionCatalog, 0, &catalog},
      {kSectionNodes, kFlagLz, &nodes},
      {kSectionAttributes, kFlagLz, &attrs},
      {kSectionInverted, 0, &inverted},
  };
  if (include_bounds) {
    sections.push_back({kSectionRankBounds, 0, &rank_bounds});
  }
  const size_t section_count = sections.size();

  std::string out;
  out.append(kMagicV2);
  PutFixed32(&out, static_cast<uint32_t>(section_count));
  uint64_t offset =
      kMagicV2.size() + 4 + section_count * kSectionEntryBytes;
  for (const Pending& section : sections) {
    PutFixed32(&out, section.id);
    PutFixed32(&out, section.flags);
    PutFixed64(&out, offset);
    PutFixed64(&out, section.payload->size());
    offset += section.payload->size();
  }
  for (const Pending& section : sections) out.append(*section.payload);
  return out;
}

Result<XmlIndex> DeserializeIndexV1(std::string_view bytes) {
  bytes.remove_prefix(kMagicV1.size());
  XmlIndex index;
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&bytes, &index.catalog));
  GKS_RETURN_IF_ERROR(NodeInfoTable::DecodeFrom(&bytes, &index.nodes));
  GKS_RETURN_IF_ERROR(AttrDirectory::DecodeFrom(&bytes, &index.attributes));
  GKS_RETURN_IF_ERROR(InvertedIndex::DecodeFrom(&bytes, &index.inverted));
  if (!bytes.empty()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  index.epoch = NextIndexEpoch();
  return index;
}

// The eager v2 path: every section fully decoded before returning, so the
// result owns all of its memory and `bytes` may go away.
Result<XmlIndex> DeserializeIndexV2(std::string_view bytes) {
  std::vector<SectionEntry> table;
  GKS_RETURN_IF_ERROR(ParseV2SectionTable(bytes, &table));
  XmlIndex index;
  std::string storage;
  std::string_view payload;

  SectionEntry entry;
  GKS_RETURN_IF_ERROR(FindSection(table, kSectionCatalog, &entry));
  GKS_RETURN_IF_ERROR(
      UnwrapSection(entry.PayloadIn(bytes), entry.lz(), &storage, &payload));
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&payload, &index.catalog));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after catalog section");
  }

  GKS_RETURN_IF_ERROR(FindSection(table, kSectionNodes, &entry));
  GKS_RETURN_IF_ERROR(
      UnwrapSection(entry.PayloadIn(bytes), entry.lz(), &storage, &payload));
  GKS_RETURN_IF_ERROR(NodeInfoTable::DecodeFrom(&payload, &index.nodes));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after node table section");
  }

  GKS_RETURN_IF_ERROR(FindSection(table, kSectionAttributes, &entry));
  GKS_RETURN_IF_ERROR(
      UnwrapSection(entry.PayloadIn(bytes), entry.lz(), &storage, &payload));
  GKS_RETURN_IF_ERROR(AttrDirectory::DecodeFrom(&payload, &index.attributes));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after attr directory section");
  }

  GKS_RETURN_IF_ERROR(FindSection(table, kSectionInverted, &entry));
  GKS_RETURN_IF_ERROR(
      UnwrapSection(entry.PayloadIn(bytes), entry.lz(), &storage, &payload));
  GKS_RETURN_IF_ERROR(
      InvertedIndex::DecodeFromBlocks(&payload, nullptr, &index.inverted));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after inverted index section");
  }

  // Optional since PR 7: older v2 files simply lack the section, which
  // leaves every list without bounds (treated as +inf by the evaluator).
  // Applied before MaterializeAll so validation can still cross-check the
  // skip tables.
  if (const SectionEntry* bounds =
          FindOptionalSection(table, kSectionRankBounds)) {
    GKS_RETURN_IF_ERROR(UnwrapSection(bounds->PayloadIn(bytes), bounds->lz(),
                                      &storage, &payload));
    GKS_RETURN_IF_ERROR(index.inverted.ApplyRankBounds(payload));
  }

  // The lists' block views point into `bytes`, which dies with the caller:
  // force them eager while the views are still valid.
  index.inverted.MaterializeAll();

  index.epoch = NextIndexEpoch();
  return index;
}

}  // namespace

std::string SerializeIndex(const XmlIndex& index, IndexFormat format) {
  WallTimer timer;
  std::string out;
  switch (format) {
    case IndexFormat::kV1:
      out = SerializeIndexV1(index);
      break;
    case IndexFormat::kV2NoRankBounds:
      out = SerializeIndexV2(index, /*include_bounds=*/false);
      break;
    case IndexFormat::kV2:
      out = SerializeIndexV2(index, /*include_bounds=*/true);
      break;
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("gks.index.serialize.bytes_total")->Add(out.size());
  registry.GetHistogram("gks.index.serialize.latency_ms")
      ->Observe(timer.ElapsedMillis());
  return out;
}

Result<XmlIndex> DeserializeIndex(std::string_view bytes) {
  WallTimer timer;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("gks.index.deserialize.bytes_total")
      ->Add(bytes.size());
  if (bytes.size() < kMagicV1.size()) {
    return Status::Corruption("not a GKS index file (too short)");
  }
  Result<XmlIndex> result = Status::OK();
  if (bytes.substr(0, kMagicV1.size()) == kMagicV1) {
    result = DeserializeIndexV1(bytes);
  } else if (bytes.substr(0, kMagicV2.size()) == kMagicV2) {
    result = DeserializeIndexV2(bytes);
  } else {
    return Status::Corruption("not a GKS index file (bad magic)");
  }
  GKS_RETURN_IF_ERROR(result.status());
  registry.GetHistogram("gks.index.deserialize.latency_ms")
      ->Observe(timer.ElapsedMillis());
  return result;
}

Status SaveIndex(const XmlIndex& index, const std::string& path,
                 IndexFormat format) {
  return xml::WriteStringToFile(path, SerializeIndex(index, format));
}

Result<XmlIndex> LoadIndex(const std::string& path) {
  std::string bytes;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &bytes));
  return DeserializeIndex(bytes);
}

Result<XmlIndex> LoadIndexMapped(const std::string& path) {
  WallTimer timer;
  Result<std::shared_ptr<const MappedFile>> mapped = MappedFile::Open(path);
  GKS_RETURN_IF_ERROR(mapped.status());
  std::shared_ptr<const MappedFile> file = std::move(*mapped);
  std::string_view bytes = file->bytes();

  if (bytes.size() >= kMagicV1.size() &&
      bytes.substr(0, kMagicV1.size()) == kMagicV1) {
    // v1 has no section table to defer through — degrade to the eager
    // path. The mapping is released when `file` goes out of scope.
    return DeserializeIndex(bytes);
  }
  if (bytes.size() < kMagicV2.size() ||
      bytes.substr(0, kMagicV2.size()) != kMagicV2) {
    return Status::Corruption("not a GKS index file (bad magic)");
  }

  std::vector<SectionEntry> table;
  GKS_RETURN_IF_ERROR(ParseV2SectionTable(bytes, &table));

  XmlIndex index;
  // The catalog is a handful of bytes; decoding it now costs nothing and
  // gives callers document names without a fault-in.
  SectionEntry entry;
  GKS_RETURN_IF_ERROR(FindSection(table, kSectionCatalog, &entry));
  std::string storage;
  std::string_view payload;
  GKS_RETURN_IF_ERROR(
      UnwrapSection(entry.PayloadIn(bytes), entry.lz(), &storage, &payload));
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&payload, &index.catalog));
  if (!payload.empty()) {
    return Status::Corruption("trailing bytes after catalog section");
  }

  // Everything else stays encoded in the mapping until first touch; the
  // shared_ptr anchors keep the file mapped as long as any section (or any
  // block-backed posting list handed out of the inverted index) is alive.
  GKS_RETURN_IF_ERROR(FindSection(table, kSectionNodes, &entry));
  index.nodes.AttachEncoded(entry.PayloadIn(bytes), entry.lz(), file);
  GKS_RETURN_IF_ERROR(FindSection(table, kSectionAttributes, &entry));
  index.attributes.AttachEncoded(entry.PayloadIn(bytes), entry.lz(), file);
  GKS_RETURN_IF_ERROR(FindSection(table, kSectionInverted, &entry));
  index.inverted.AttachEncoded(entry.PayloadIn(bytes), entry.lz(), file);
  if (const SectionEntry* bounds =
          FindOptionalSection(table, kSectionRankBounds)) {
    index.inverted.AttachRankBounds(bounds->PayloadIn(bytes), bounds->lz(),
                                    file);
  }

  index.epoch = NextIndexEpoch();

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("gks.index.v2.bytes_mapped_total")->Add(bytes.size());
  registry.GetHistogram("gks.index.mmap_load.latency_ms")
      ->Observe(timer.ElapsedMillis());
  return index;
}

Result<IndexFileInfo> InspectIndexFile(const std::string& path) {
  std::string bytes;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &bytes));
  std::string_view view = bytes;
  IndexFileInfo info;
  info.file_bytes = bytes.size();

  if (view.size() >= kMagicV2.size() &&
      view.substr(0, kMagicV2.size()) == kMagicV2) {
    info.version = 2;
    std::vector<SectionEntry> table;
    GKS_RETURN_IF_ERROR(ParseV2SectionTable(view, &table));
    for (const SectionEntry& entry : table) {
      info.sections.push_back(
          {SectionName(entry.id), entry.length, entry.lz()});
    }
    return info;
  }

  if (view.size() < kMagicV1.size() ||
      view.substr(0, kMagicV1.size()) != kMagicV1) {
    return Status::Corruption("not a GKS index file (bad magic)");
  }
  // v1 has no table: decode progressively and charge each section the
  // bytes its decoder consumed.
  info.version = 1;
  view.remove_prefix(kMagicV1.size());
  size_t before = view.size();

  Catalog catalog;
  GKS_RETURN_IF_ERROR(Catalog::DecodeFrom(&view, &catalog));
  info.sections.push_back({"catalog", before - view.size(), false});
  before = view.size();

  NodeInfoTable nodes;
  GKS_RETURN_IF_ERROR(NodeInfoTable::DecodeFrom(&view, &nodes));
  info.sections.push_back({"nodes", before - view.size(), false});
  before = view.size();

  AttrDirectory attributes;
  GKS_RETURN_IF_ERROR(AttrDirectory::DecodeFrom(&view, &attributes));
  info.sections.push_back({"attributes", before - view.size(), false});
  before = view.size();

  InvertedIndex inverted;
  GKS_RETURN_IF_ERROR(InvertedIndex::DecodeFrom(&view, &inverted));
  info.sections.push_back({"inverted", before - view.size(), false});

  if (!view.empty()) {
    return Status::Corruption("trailing bytes after index payload");
  }
  return info;
}

}  // namespace gks
