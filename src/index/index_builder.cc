#include "index/index_builder.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/metrics.h"
#include "common/timer.h"
#include "index/categorizer.h"
#include "text/analyzer.h"
#include "xml/sax_parser.h"

namespace gks {
namespace {

// Registry instruments for the build hot path (millions of node / posting
// events per document): looked up once, then atomic adds only. See
// docs/OBSERVABILITY.md for the metric inventory.
struct BuildMetrics {
  Counter* documents;
  Counter* elements;
  Counter* postings;
  Counter* text_bytes;
  Counter* cat_attribute;
  Counter* cat_entity;
  Counter* cat_repeating;
  Counter* cat_connecting;
  Histogram* document_ms;

  static const BuildMetrics& Get() {
    static const BuildMetrics metrics = [] {
      MetricsRegistry& r = MetricsRegistry::Global();
      BuildMetrics m;
      m.documents = r.GetCounter("gks.index.documents_total");
      m.elements = r.GetCounter("gks.index.elements_total");
      m.postings = r.GetCounter("gks.index.postings_total");
      m.text_bytes = r.GetCounter("gks.index.text_bytes_total");
      m.cat_attribute = r.GetCounter("gks.index.categorizer.attribute_total");
      m.cat_entity = r.GetCounter("gks.index.categorizer.entity_total");
      m.cat_repeating = r.GetCounter("gks.index.categorizer.repeating_total");
      m.cat_connecting =
          r.GetCounter("gks.index.categorizer.connecting_total");
      m.document_ms = r.GetHistogram("gks.index.build.document_ms");
      return m;
    }();
    return metrics;
  }
};

}  // namespace

/// SAX handler that drives Dewey assignment, the streaming categorizer and
/// posting emission for one document at a time.
class IndexBuilder::Handler : public xml::SaxHandler {
 public:
  Handler(XmlIndex* index, const IndexBuilderOptions& options)
      : index_(index),
        options_(options),
        categorizer_(&index->nodes,
                     [this](const StreamingCategorizer::NodeFacts& facts) {
                       OnNodeFacts(facts);
                     }) {}

  // `dewey_doc_id` seeds the Dewey ids (may be offset for incremental
  // deltas); the catalog entry is always the builder-local one.
  void BeginDocument(uint32_t dewey_doc_id) {
    doc_id_ = dewey_doc_id;
    doc_info_ = index_->catalog.mutable_document(
        static_cast<uint32_t>(index_->catalog.document_count() - 1));
    categorizer_.StartDocument(dewey_doc_id);
    child_counters_.clear();
    child_counters_.push_back(0);  // counter for the document level
  }

  Status StartElement(std::string_view name,
                      const std::vector<xml::XmlAttribute>& attributes)
      override {
    OpenOneElement(name);
    if (options_.attributes_as_elements) {
      for (const xml::XmlAttribute& attr : attributes) {
        OpenOneElement(attr.name);
        AddTextToCurrent(attr.value);
        CloseOneElement();
      }
    }
    return Status::OK();
  }

  Status EndElement(std::string_view) override {
    CloseOneElement();
    return Status::OK();
  }

  Status Characters(std::string_view text) override {
    AddTextToCurrent(text);
    return Status::OK();
  }

  Status EndDocument() override {
    categorizer_.FinishDocument();
    return Status::OK();
  }

 private:
  void OpenOneElement(std::string_view name) {
    uint32_t ordinal = child_counters_.back()++;
    child_counters_.push_back(0);
    categorizer_.OpenElement(name, ordinal);

    DeweyId id = categorizer_.CurrentId().ToDeweyId();
    // Tag names are searchable keywords too (Example 3 queries "student"):
    // same pipeline as text, minus stop-word removal so tags like <The>
    // stay reachable.
    text::AnalyzerOptions tag_options;
    tag_options.remove_stopwords = false;
    const BuildMetrics& metrics = BuildMetrics::Get();
    for (const std::string& term : text::Analyze(name, tag_options)) {
      index_->inverted.Add(term, id);
      metrics.postings->Increment();
    }
    metrics.elements->Increment();

    ++doc_info_->element_count;
    uint32_t depth = static_cast<uint32_t>(child_counters_.size()) - 2;
    doc_info_->max_depth = std::max(doc_info_->max_depth, depth + 1);
  }

  void AddTextToCurrent(std::string_view text) {
    ++child_counters_.back();  // the text segment consumes a child ordinal
    DeweyId id = categorizer_.CurrentId().ToDeweyId();
    const BuildMetrics& metrics = BuildMetrics::Get();
    for (const std::string& term : text::Analyze(text)) {
      index_->inverted.Add(term, id);
      metrics.postings->Increment();
    }
    categorizer_.AddText(text);
    doc_info_->text_bytes += text.size();
    metrics.text_bytes->Add(text.size());
  }

  void CloseOneElement() {
    categorizer_.CloseElement();
    child_counters_.pop_back();
  }

  void OnNodeFacts(const StreamingCategorizer::NodeFacts& facts) {
    const BuildMetrics& metrics = BuildMetrics::Get();
    if (facts.flags & kFlagAttribute) metrics.cat_attribute->Increment();
    if (facts.flags & kFlagEntity) metrics.cat_entity->Increment();
    if (facts.flags & kFlagRepeating) metrics.cat_repeating->Increment();
    if (facts.flags & kFlagConnecting) metrics.cat_connecting->Increment();
    NodeInfo info;
    info.flags = facts.flags;
    info.child_count = facts.child_count;
    info.tag_id = facts.tag_id;
    // Leaf-text values feed DI discovery. Repeating leaf values (e.g.
    // DBLP's <author> under a multi-author article) are kept as well: the
    // paper's own DI examples expose them (<ip: author: ...>).
    if (facts.direct_text != nullptr && !facts.direct_text->empty() &&
        facts.direct_text->size() <= options_.max_stored_value_bytes) {
      info.value_id = index_->nodes.InternValue(*facts.direct_text);
      index_->attributes.Add(facts.id.ToDeweyId(), facts.tag_id,
                             info.value_id);
    }
    index_->nodes.Put(facts.id, info);
  }


  XmlIndex* index_;
  const IndexBuilderOptions& options_;
  StreamingCategorizer categorizer_;
  uint32_t doc_id_ = 0;
  Catalog::DocumentInfo* doc_info_ = nullptr;
  std::vector<uint32_t> child_counters_;
};

IndexBuilder::IndexBuilder(IndexBuilderOptions options)
    : options_(options),
      index_(std::make_unique<XmlIndex>()),
      handler_(std::make_unique<Handler>(index_.get(), options_)) {}

IndexBuilder::~IndexBuilder() = default;

Status IndexBuilder::AddDocument(std::string_view xml, std::string name) {
  if (index_ == nullptr) {
    return Status::InvalidArgument("builder already finalized");
  }
  WallTimer timer;
  uint32_t doc_id = index_->catalog.AddDocument(std::move(name));
  handler_->BeginDocument(options_.first_doc_id + doc_id);
  Status status = ParseXml(xml, handler_.get());
  {
    const BuildMetrics& metrics = BuildMetrics::Get();
    metrics.documents->Increment();
    metrics.document_ms->Observe(timer.ElapsedMillis());
  }
  if (!status.ok()) {
    // A failed parse leaves the categorizer mid-document; reset it so the
    // builder stays usable. Postings already emitted for the bad document
    // remain (its catalog entry records what was consumed).
    handler_ = std::make_unique<Handler>(index_.get(), options_);
  }
  return status;
}

Status IndexBuilder::AddFile(const std::string& path) {
  std::string contents;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &contents));
  return AddDocument(contents, path);
}

Result<XmlIndex> IndexBuilder::Finalize() && {
  return std::move(*this).Finalize(nullptr);
}

Result<XmlIndex> IndexBuilder::Finalize(ThreadPool* pool) && {
  if (index_ == nullptr) {
    return Status::InvalidArgument("builder already finalized");
  }
  index_->inverted.Finalize(pool);
  index_->attributes.Finalize();
  XmlIndex result = std::move(*index_);
  index_.reset();
  return result;
}

}  // namespace gks
