#ifndef GKS_INDEX_BLOCK_MAX_H_
#define GKS_INDEX_BLOCK_MAX_H_

#include <vector>

#include "index/node_info_table.h"
#include "index/posting_list.h"

namespace gks {

/// Computes the per-block rank bounds (format v2 rank_bounds section) for
/// one finalized posting list: for each kPostingBlockSize-id block, the
/// maximum per-occurrence rank weight of any id in it plus the block's
/// depth envelope (min/max id depth).
///
/// The weight bounds the potential-flow contribution of one occurrence
/// relative to the query potential P (ranking.cc): a terminal occurrence
/// contributes at most P, so the unconditional weight is 1.0. The one
/// structural case where the flow provably loses mass is an attribute
/// node under a wide parent — an attribute node holds a single text child
/// and no element children, so it can only ever be a *leaf* terminal, and
/// the k occurrences of this list under one parent with child_count cc
/// jointly receive at most k/cc of the flow arriving at that parent.
/// Occurrences that can sit on the response node itself (non-attribute
/// ids, entity-flagged ids, document roots) keep weight 1.0.
///
/// The per-block weight is the MAX of the per-id weights (not a sum):
/// per-atom flow is conserved across the equal-depth terminal antichain,
/// so the atom's total contribution is bounded by P times the largest
/// single-occurrence weight in the evaluated region.
std::vector<BlockRankBound> ComputeBlockRankBounds(const PackedIds& ids,
                                                   const NodeInfoTable& nodes);

}  // namespace gks

#endif  // GKS_INDEX_BLOCK_MAX_H_
