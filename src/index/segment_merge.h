#ifndef GKS_INDEX_SEGMENT_MERGE_H_
#define GKS_INDEX_SEGMENT_MERGE_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "index/rt_segment.h"

namespace gks {

/// Size-tiered merge policy for flushed RT segments (docs/INDEXING.md
/// § Segment lifecycle). Segments are bucketed by on-disk size into
/// geometric tiers; when a tier accumulates `fanout` members they are
/// merged into one segment of (roughly) the next tier. Write
/// amplification is O(log_fanout(total/flush)) per document — the classic
/// LSM trade against unbounded per-query segment counts.

/// Tier of a segment: floor(log4(bytes / 64KiB)), clamped at 0. Segments
/// within a factor-of-4 size band share a tier.
size_t SizeTier(uint64_t bytes);

/// Picks the next merge: the smallest tier holding >= fanout segments;
/// returns the indices (into `segment_bytes`) of its `fanout` smallest
/// members, oldest-first within equal sizes. Empty when nothing needs
/// merging or fanout == 0 (merging disabled).
std::vector<size_t> PickMergeInputs(const std::vector<uint64_t>& segment_bytes,
                                    size_t fanout);

/// Concatenates input docstores (already in segment order), drops
/// tombstoned documents, and renumbers survivors densely from
/// `new_first_doc_id` — the merged segment gets a fresh contiguous id
/// range, which purges tombstones for good. `id_map` (optional) receives
/// (old id -> new id) pairs for every survivor so tombstones racing the
/// merge can be translated at commit.
std::vector<RtDocument> MergeDocstores(
    const std::vector<std::vector<RtDocument>>& inputs,
    const std::vector<uint32_t>& tombstones_sorted, uint32_t new_first_doc_id,
    std::vector<std::pair<uint32_t, uint32_t>>* id_map);

}  // namespace gks

#endif  // GKS_INDEX_SEGMENT_MERGE_H_
