#include "index/block_max.h"

#include <algorithm>
#include <cstring>
#include <string>
#include <unordered_map>

#include "common/hash.h"
#include "index/posting_blocks.h"

namespace gks {
namespace {

// Raw-byte key of an id's parent prefix (components [0, size-1)); exact
// equality is all the sibling tally needs.
std::string ParentKey(DeweySpan id) {
  std::string key;
  key.resize((id.size - 1) * sizeof(uint32_t));
  std::memcpy(key.data(), id.data, key.size());
  return key;
}

}  // namespace

std::vector<BlockRankBound> ComputeBlockRankBounds(const PackedIds& ids,
                                                   const NodeInfoTable& nodes) {
  const size_t n = ids.size();
  const size_t blocks = (n + kPostingBlockSize - 1) / kPostingBlockSize;
  std::vector<BlockRankBound> bounds(blocks);
  if (blocks == 0) return bounds;

  // Pass 1: tally how many ids of THIS list share each exact parent —
  // siblings are not adjacent in document order once they have subtrees,
  // so a running count over neighbors would undercount.
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      siblings;
  for (size_t i = 0; i < n; ++i) {
    DeweySpan id = ids.At(i);
    if (id.size > 1) ++siblings[ParentKey(id)];
  }

  // Pass 2: per-id weight, folded into per-block max weight + depth range.
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * kPostingBlockSize;
    const size_t end = std::min(n, begin + kPostingBlockSize);
    BlockRankBound& bound = bounds[b];
    bound.weight_scaled = 1;  // raised to the block max below
    bound.min_depth = ids.At(begin).size;
    bound.max_depth = bound.min_depth;
    for (size_t i = begin; i < end; ++i) {
      DeweySpan id = ids.At(i);
      bound.min_depth = std::min(bound.min_depth, id.size);
      bound.max_depth = std::max(bound.max_depth, id.size);

      uint32_t scaled = kRankWeightOne;
      const NodeInfo* info = id.size > 1 ? nodes.Find(id) : nullptr;
      if (info != nullptr && info->is_attribute() && !info->is_entity()) {
        const NodeInfo* parent =
            nodes.Find(DeweySpan{id.data, id.size - 1});
        if (parent != nullptr && parent->child_count > 1) {
          auto it = siblings.find(ParentKey(id));
          const uint64_t k = it != siblings.end() ? it->second : 1;
          // Ceil so the fixed-point bound never under-states k/cc.
          uint64_t up = (k * kRankWeightOne + parent->child_count - 1) /
                        parent->child_count;
          scaled = static_cast<uint32_t>(
              std::min<uint64_t>(up, kRankWeightOne));
          if (scaled == 0) scaled = 1;
        }
      }
      bound.weight_scaled = std::max(bound.weight_scaled, scaled);
    }
  }
  return bounds;
}

}  // namespace gks
