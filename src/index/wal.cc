#include "index/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/varint.h"

namespace gks {
namespace {

/// Little-endian u32 framing — fixed width so a reader can tell "header
/// incomplete" from "payload incomplete" without guessing.
void PutFixed32(uint32_t value, std::string* dst) {
  char buf[4];
  buf[0] = static_cast<char>(value & 0xff);
  buf[1] = static_cast<char>((value >> 8) & 0xff);
  buf[2] = static_cast<char>((value >> 16) & 0xff);
  buf[3] = static_cast<char>((value >> 24) & 0xff);
  dst->append(buf, 4);
}

uint32_t GetFixed32(const char* p) {
  const auto* b = reinterpret_cast<const unsigned char*>(p);
  return static_cast<uint32_t>(b[0]) | (static_cast<uint32_t>(b[1]) << 8) |
         (static_cast<uint32_t>(b[2]) << 16) |
         (static_cast<uint32_t>(b[3]) << 24);
}

Status WriteAllFd(int fd, std::string_view bytes) {
  while (!bytes.empty()) {
    ssize_t n = ::write(fd, bytes.data(), bytes.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IOError(std::string("wal write: ") +
                             std::strerror(errno));
    }
    bytes.remove_prefix(static_cast<size_t>(n));
  }
  return Status::OK();
}

}  // namespace

uint32_t WalCrc32(std::string_view bytes) {
  // Table-driven CRC-32 (IEEE 802.3, reflected). Built once; 1KiB.
  static const uint32_t* kTable = [] {
    static uint32_t table[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
      }
      table[i] = crc;
    }
    return table;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (unsigned char c : bytes) {
    crc = kTable[(crc ^ c) & 0xff] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

void EncodeWalRecord(const WalRecord& record, std::string* dst) {
  std::string payload;
  payload.push_back(static_cast<char>(record.type));
  PutVarint32(&payload, record.doc_id);
  PutLengthPrefixed(&payload, record.name);
  if (record.type == WalRecordType::kInsert) {
    PutLengthPrefixed(&payload, record.xml);
  }
  PutFixed32(WalCrc32(payload), dst);
  PutFixed32(static_cast<uint32_t>(payload.size()), dst);
  dst->append(payload);
}

Status DecodeWalRecord(std::string_view* input, WalRecord* out) {
  if (input->size() < 8) {
    return Status::Corruption("wal record: truncated frame header");
  }
  uint32_t crc = GetFixed32(input->data());
  uint32_t length = GetFixed32(input->data() + 4);
  if (input->size() < 8 + static_cast<size_t>(length)) {
    return Status::Corruption("wal record: truncated payload");
  }
  std::string_view payload = input->substr(8, length);
  if (WalCrc32(payload) != crc) {
    return Status::Corruption("wal record: crc mismatch");
  }
  if (payload.empty()) {
    return Status::Corruption("wal record: empty payload");
  }
  WalRecord record;
  uint8_t type = static_cast<uint8_t>(payload[0]);
  payload.remove_prefix(1);
  if (type != static_cast<uint8_t>(WalRecordType::kInsert) &&
      type != static_cast<uint8_t>(WalRecordType::kDelete)) {
    return Status::Corruption("wal record: unknown type " +
                              std::to_string(type));
  }
  record.type = static_cast<WalRecordType>(type);
  GKS_RETURN_IF_ERROR(GetVarint32(&payload, &record.doc_id));
  GKS_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &record.name));
  if (record.type == WalRecordType::kInsert) {
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(&payload, &record.xml));
  }
  if (!payload.empty()) {
    return Status::Corruption("wal record: trailing bytes in payload");
  }
  input->remove_prefix(8 + length);
  *out = std::move(record);
  return Status::OK();
}

WalWriter::~WalWriter() { Close(); }

WalWriter::WalWriter(WalWriter&& other) noexcept
    : fd_(other.fd_),
      fsync_(other.fsync_),
      path_(std::move(other.path_)),
      bytes_(other.bytes_),
      records_(other.records_) {
  other.fd_ = -1;
}

WalWriter& WalWriter::operator=(WalWriter&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    fsync_ = other.fsync_;
    path_ = std::move(other.path_);
    bytes_ = other.bytes_;
    records_ = other.records_;
    other.fd_ = -1;
  }
  return *this;
}

Result<WalWriter> WalWriter::Open(const std::string& path, bool fsync,
                                  int64_t expected_bytes) {
  int fd = ::open(path.c_str(), O_CREAT | O_RDWR, 0644);
  if (fd < 0) {
    return Status::IOError("wal open '" + path + "': " +
                           std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::IOError("wal stat '" + path + "': " +
                           std::strerror(errno));
  }
  uint64_t size = static_cast<uint64_t>(st.st_size);
  if (expected_bytes >= 0 && size > static_cast<uint64_t>(expected_bytes)) {
    // Cut the torn tail recovery identified before the first new append.
    if (::ftruncate(fd, expected_bytes) != 0) {
      ::close(fd);
      return Status::IOError("wal truncate '" + path + "': " +
                             std::strerror(errno));
    }
    size = static_cast<uint64_t>(expected_bytes);
  }
  WalWriter writer;
  writer.fd_ = fd;
  writer.fsync_ = fsync;
  writer.path_ = path;
  writer.bytes_ = size;
  if (size == 0) {
    if (Status status = WriteAllFd(fd, kWalMagic); !status.ok()) {
      return status;
    }
    writer.bytes_ = kWalMagic.size();
    if (fsync) GKS_RETURN_IF_ERROR(writer.Sync());
  } else if (::lseek(fd, 0, SEEK_END) < 0) {
    return Status::IOError("wal seek '" + path + "': " +
                           std::strerror(errno));
  }
  return writer;
}

Status WalWriter::Append(const WalRecord& record) {
  if (fd_ < 0) return Status::IOError("wal writer is closed");
  std::string framed;
  EncodeWalRecord(record, &framed);
  GKS_RETURN_IF_ERROR(WriteAllFd(fd_, framed));
  bytes_ += framed.size();
  ++records_;
  if (fsync_) return Sync();
  return Status::OK();
}

Status WalWriter::Sync() {
  if (fd_ < 0) return Status::IOError("wal writer is closed");
  if (::fsync(fd_) != 0) {
    return Status::IOError("wal fsync '" + path_ + "': " +
                           std::strerror(errno));
  }
  return Status::OK();
}

void WalWriter::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<WalReplay> ReplayWal(const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("wal file '" + path + "' does not exist");
    }
    return Status::IOError("wal open '" + path + "': " +
                           std::strerror(errno));
  }
  std::string contents;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("wal read '" + path + "': " +
                             std::strerror(errno));
    }
    if (n == 0) break;
    contents.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  if (contents.size() < kWalMagic.size() ||
      std::string_view(contents).substr(0, kWalMagic.size()) != kWalMagic) {
    // An empty or foreign file is not a WAL; refusing loudly beats
    // silently treating user data as an empty log.
    return Status::Corruption("'" + path + "' is not a GKSWAL01 file");
  }

  WalReplay replay;
  std::string_view input(contents);
  input.remove_prefix(kWalMagic.size());
  replay.valid_bytes = kWalMagic.size();
  while (!input.empty()) {
    WalRecord record;
    std::string_view before = input;
    if (!DecodeWalRecord(&input, &record).ok()) {
      // Torn or corrupt tail: keep the verified prefix, report the cut.
      (void)before;
      replay.clean = false;
      break;
    }
    replay.valid_bytes += before.size() - input.size();
    replay.records.push_back(std::move(record));
  }
  return replay;
}

Status SyncDirOf(const std::string& path) {
  std::string dir = ".";
  size_t slash = path.find_last_of('/');
  if (slash != std::string::npos) dir = path.substr(0, slash);
  if (dir.empty()) dir = "/";
  int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Status::OK();  // best effort
  (void)::fsync(fd);
  ::close(fd);
  return Status::OK();
}

}  // namespace gks
