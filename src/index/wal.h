#ifndef GKS_INDEX_WAL_H_
#define GKS_INDEX_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace gks {

/// Write-ahead log for the real-time index (docs/INDEXING.md). One WAL
/// file holds every committed write since the segment set it follows was
/// made durable; replaying it over that segment set reproduces the exact
/// pre-crash state.
///
/// File layout ("GKSWAL01" format):
///
///   [8]  magic "GKSWAL01"
///   repeated records, each:
///     [4]  crc32 of the payload, little-endian (poly 0xEDB88320)
///     [4]  payload length, little-endian
///     [n]  payload: [1] record type, then the type-specific body
///
/// Record bodies (all integers varint, strings length-prefixed):
///   type 1 (insert): doc_id, name, xml
///   type 2 (delete): doc_id, name  (doc_id is authoritative; the name is
///                                   kept for debuggability and audits)
///
/// A torn final record — the classic crash shape: the length header made
/// it to disk but the payload did not, or the payload is half-written —
/// fails its CRC or runs past EOF. Replay stops at the last record whose
/// CRC verifies and reports the byte offset of the valid prefix; the
/// writer truncates the tail before appending again, so a torn write can
/// never corrupt records committed after recovery.

inline constexpr std::string_view kWalMagic = "GKSWAL01";

enum class WalRecordType : uint8_t {
  kInsert = 1,
  kDelete = 2,
};

struct WalRecord {
  WalRecordType type = WalRecordType::kInsert;
  uint32_t doc_id = 0;
  std::string name;
  std::string xml;  // empty for deletes

  bool operator==(const WalRecord& other) const {
    return type == other.type && doc_id == other.doc_id &&
           name == other.name && xml == other.xml;
  }
};

/// CRC-32 (IEEE, reflected, poly 0xEDB88320) over `bytes`.
uint32_t WalCrc32(std::string_view bytes);

/// Appends one fully framed record (header + payload) to `*dst`.
void EncodeWalRecord(const WalRecord& record, std::string* dst);

/// Decodes one framed record from `*input`, advancing it past the record.
/// Corruption on a CRC mismatch, a truncated frame, or a malformed body.
Status DecodeWalRecord(std::string_view* input, WalRecord* out);

/// Append-side handle. Opens (creating if absent) for append; when the
/// file is new the magic is written first. `fsync` syncs the file after
/// every Append — the durability contract of --rt-fsync=always.
class WalWriter {
 public:
  WalWriter() = default;
  ~WalWriter();
  WalWriter(WalWriter&& other) noexcept;
  WalWriter& operator=(WalWriter&& other) noexcept;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// `expected_bytes` >= 0 truncates the file to that length first —
  /// recovery passes the replay's valid prefix so a torn tail is cut
  /// before the first post-recovery append.
  static Result<WalWriter> Open(const std::string& path, bool fsync,
                                int64_t expected_bytes = -1);

  Status Append(const WalRecord& record);
  Status Sync();
  void Close();

  bool open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  uint64_t bytes() const { return bytes_; }
  uint64_t records() const { return records_; }

 private:
  int fd_ = -1;
  bool fsync_ = true;
  std::string path_;
  uint64_t bytes_ = 0;
  uint64_t records_ = 0;
};

/// Replay outcome: the decoded records plus where the valid prefix ends.
struct WalReplay {
  std::vector<WalRecord> records;
  uint64_t valid_bytes = 0;  // length of the verified prefix (incl. magic)
  bool clean = true;         // false: torn/corrupt tail after valid_bytes
};

/// Reads and verifies `path` front to back. Stops at the first record
/// that fails its CRC or frame check (`clean = false`); everything before
/// it is returned. NotFound when the file does not exist; Corruption only
/// when the magic itself is wrong (the file is not a WAL at all).
Result<WalReplay> ReplayWal(const std::string& path);

/// Fsyncs the directory containing `path` (best effort on filesystems
/// that do not support directory fsync).
Status SyncDirOf(const std::string& path);

}  // namespace gks

#endif  // GKS_INDEX_WAL_H_
