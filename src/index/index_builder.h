#ifndef GKS_INDEX_INDEX_BUILDER_H_
#define GKS_INDEX_INDEX_BUILDER_H_

#include <memory>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/xml_index.h"

namespace gks {

struct IndexBuilderOptions {
  /// Treat XML attributes (name="value") as child elements so they
  /// participate in search and categorization exactly like the paper's
  /// element-structured examples.
  bool attributes_as_elements = true;
  /// Leaf-text values longer than this are not stored in the DI value pool
  /// (they still get indexed as keywords).
  size_t max_stored_value_bytes = 256;
  /// Dewey document ids start here — used by the incremental updater to
  /// build deltas whose ids sort after an existing index's.
  uint32_t first_doc_id = 0;
};

/// Builds the complete GKS index (inverted index, node-category hash
/// tables, attribute directory, catalog) in a single streaming pass per
/// document, exactly as Sec. 2.4 prescribes ("the hash tables and the
/// inverted index are created in a single pass over XML data").
///
/// Usage:
///   IndexBuilder builder;
///   builder.AddDocument(xml_text, "dblp.xml");
///   Result<XmlIndex> index = std::move(builder).Finalize();
class IndexBuilder {
 public:
  explicit IndexBuilder(IndexBuilderOptions options = {});
  ~IndexBuilder();

  IndexBuilder(const IndexBuilder&) = delete;
  IndexBuilder& operator=(const IndexBuilder&) = delete;

  /// Parses and indexes one document; `name` labels it in the catalog.
  /// Documents receive consecutive ids starting at 0.
  Status AddDocument(std::string_view xml, std::string name);

  /// Reads and indexes the file at `path` (catalog name = path).
  Status AddFile(const std::string& path);

  /// Completes the index. The builder is consumed. With a pool, the
  /// per-keyword posting sorts fan out across its workers (the result is
  /// identical to the sequential finalize).
  Result<XmlIndex> Finalize() &&;
  Result<XmlIndex> Finalize(ThreadPool* pool) &&;

 private:
  class Handler;

  IndexBuilderOptions options_;
  std::unique_ptr<XmlIndex> index_;
  std::unique_ptr<Handler> handler_;
};

}  // namespace gks

#endif  // GKS_INDEX_INDEX_BUILDER_H_
