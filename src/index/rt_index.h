#ifndef GKS_INDEX_RT_INDEX_H_
#define GKS_INDEX_RT_INDEX_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/rt_segment.h"
#include "index/wal.h"

namespace gks {

class Counter;
class Gauge;

/// Tunables for the real-time index; each maps onto a `gks serve --rt-*`
/// flag (docs/INDEXING.md § Tuning).
struct RtOptions {
  /// Home directory: MANIFEST, wal-*.log, seg-*.gksidx + seg-*.docs.
  std::string dir;
  /// Optional immutable base index (the offline-built CLI file) serving
  /// global doc ids [0, base_docs). Never merged (it has no docstore).
  std::string base_index_path;
  /// Open the base and flushed segments with LoadIndexMapped.
  bool mmap = false;
  /// Seal + flush the RAM window once it holds this many documents.
  size_t flush_docs = 512;
  /// ... or this many bytes of raw XML, whichever comes first.
  size_t flush_bytes = 8u << 20;
  /// Size-tiered merge fanout; 0 disables background merging.
  size_t merge_fanout = 4;
  /// Fold pending single-document micro-segments into the window's
  /// accumulated segment every N inserts (bounds per-query segment count).
  size_t compact_every = 16;
  /// Fsync the WAL after every commit (--rt-fsync=always). Off trades the
  /// last few commits for ingest throughput (--rt-fsync=off).
  bool fsync = true;
  /// Run the flusher/merger thread. Tests disable it and drive Flush()
  /// deterministically; the server always enables it.
  bool background = true;
};

/// Point-in-time counters for `stats` and the rt_bench report.
struct RtStats {
  uint64_t ram_docs = 0;        // window + sealed-but-unflushed documents
  uint64_t ram_bytes = 0;       // raw XML bytes held in RAM
  uint64_t disk_segments = 0;   // flushed/merged segments (excl. base)
  uint64_t tombstones = 0;
  uint64_t live_docs = 0;
  uint64_t next_doc_id = 0;
  uint64_t wal_records = 0;     // appended since open (excl. replay)
  uint64_t replayed_records = 0;
  uint64_t flushes = 0;
  uint64_t merges = 0;
  uint64_t purged_docs = 0;     // tombstones dropped for good by merges
};

/// The real-time index (docs/INDEXING.md): an updatable view over a set
/// of immutable segments.
///
///   - `Insert` builds a single-document micro-segment, logs the raw XML
///     to the WAL, and publishes a new snapshot — the document is
///     searchable when Insert returns, with no rebuild or reload.
///   - Every `compact_every` inserts the window's micro-segments are
///     folded into one accumulated RAM segment (deterministic rebuild
///     from the raw documents), bounding per-query segment count.
///   - The flusher seals the RAM window once it exceeds `flush_docs` /
///     `flush_bytes`, rotates the WAL, rebuilds the sealed run into an
///     immutable v2 on-disk segment (plus a docstore sidecar), swaps it
///     in, and retires the old WAL.
///   - Flushed segments merge size-tiered (`merge_fanout`); merges
///     renumber surviving documents into a fresh contiguous id range,
///     which is what finally purges tombstones.
///   - `Delete` masks a document everywhere via the snapshot's tombstone
///     set; it takes effect on the snapshot published before Delete
///     returns.
///
/// Readers never block writers and vice versa: every mutation publishes a
/// fresh immutable SegmentSetSnapshot (epoch-stamped, so the result cache
/// self-invalidates) and in-flight queries keep the snapshot they
/// admitted with. Crash recovery replays the WAL over the manifest's
/// segment set and reproduces the pre-crash state exactly — including
/// byte-identical segment files on the next flush, because segment builds
/// are deterministic functions of the raw documents.
class RtIndex {
 public:
  static Result<std::unique_ptr<RtIndex>> Open(RtOptions options);
  ~RtIndex();  // stops background work; durable state is already on disk

  RtIndex(const RtIndex&) = delete;
  RtIndex& operator=(const RtIndex&) = delete;

  /// Commits one document; returns its global doc id. AlreadyExists for a
  /// live duplicate name, InvalidArgument/Corruption for XML that does
  /// not index, IOError when the WAL append fails (state unchanged).
  Result<uint32_t> Insert(std::string name, std::string xml);

  /// Deletes by catalog name. False when no live document has the name
  /// (idempotent — not an error). True: masked from the next snapshot on.
  Result<bool> Delete(const std::string& name);

  /// Seals and flushes everything RAM-resident to disk segments, then
  /// retires the WAL it covered. Serialized with background flush/merge;
  /// returns when the new segment set is durable. No-op when RAM is empty.
  Status Flush();

  /// Runs one size-tiered merge round if the policy wants one. Exposed
  /// for tests; the background thread calls it after every flush.
  Status MaybeMerge();

  std::shared_ptr<const SegmentSetSnapshot> snapshot() const;
  uint64_t epoch() const;
  RtStats Stats() const;
  const RtOptions& options() const { return options_; }

 private:
  /// A sealed, not-yet-flushed contiguous run of the RAM window: its raw
  /// documents plus the segment views that keep it searchable.
  struct SealedRun {
    std::vector<RtDocument> docs;
    std::vector<SegmentView> views;
  };
  /// One flushed on-disk segment.
  struct DiskSegment {
    uint64_t seq = 0;
    std::string file;      // seg-NNNNNN.gksidx (relative to dir)
    std::string docstore;  // seg-NNNNNN.docs
    uint32_t doc_base = 0;
    uint32_t doc_count = 0;
    uint64_t bytes = 0;    // index file size (merge-policy input)
    std::shared_ptr<const XmlIndex> index;
  };

  RtIndex(RtOptions options);

  Status OpenInternal();
  Status Recover();
  Status ApplyReplayRecord(const WalRecord& record);
  Status ApplyInsertLocked(RtDocument doc, bool replay);
  Status CompactWindowLocked();
  void SealWindowLocked(bool rotate_wal);
  Status RotateWalLocked();
  Status DoFlush();
  Status DoMerge();
  Status WriteManifestLocked();
  Status LoadSegmentFile(const std::string& file, uint64_t expected_base,
                         std::shared_ptr<const XmlIndex>* out) const;
  void PublishLocked();
  std::vector<SegmentView> WindowViewsLocked() const;
  void BackgroundLoop();
  void PokeBackground();
  bool FlushDueLocked() const;
  std::string PathIn(const std::string& file) const;
  std::string WalPath(uint64_t seq) const;
  std::string SegmentFileName(uint64_t seq) const;

  const RtOptions options_;

  /// Serializes commits (insert/delete) and snapshot-state mutation.
  mutable std::mutex commit_mu_;
  /// Serializes whole flush/merge operations (their IO runs outside
  /// commit_mu_ so commits keep flowing during a flush).
  std::mutex flush_mu_;

  // --- state below guarded by commit_mu_ ---
  uint32_t next_doc_id_ = 0;
  uint32_t base_docs_ = 0;
  uint64_t manifest_wal_seq_ = 1;  // replay starts at this wal seq
  uint64_t active_wal_seq_ = 1;    // wal file taking new appends
  uint64_t next_segment_seq_ = 1;
  std::optional<WalWriter> wal_;
  std::shared_ptr<const XmlIndex> base_;
  std::vector<RtDocument> ram_docs_;  // current (contiguous) RAM window
  std::vector<std::shared_ptr<const XmlIndex>> ram_micro_;
  std::shared_ptr<const XmlIndex> ram_accum_;
  size_t accum_docs_ = 0;  // prefix of ram_docs_ covered by ram_accum_
  std::vector<SealedRun> sealed_;
  std::vector<DiskSegment> disk_;
  std::shared_ptr<const std::vector<uint32_t>> deleted_;
  std::unordered_map<std::string, uint32_t> live_;  // name -> global id
  uint64_t replayed_records_ = 0;
  uint64_t flushes_ = 0;
  uint64_t merges_ = 0;
  uint64_t purged_docs_ = 0;

  mutable std::mutex snapshot_mu_;  // publication swap only
  std::shared_ptr<const SegmentSetSnapshot> snapshot_;

  std::thread bg_;
  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool bg_stop_ = false;
  bool bg_poked_ = false;

  // Cached instruments (gks.rt.*, docs/OBSERVABILITY.md).
  Counter* inserts_total_;
  Counter* deletes_total_;
  Counter* wal_records_total_;
  Counter* wal_bytes_total_;
  Counter* wal_rotations_total_;
  Counter* wal_replayed_total_;
  Counter* flushes_total_;
  Counter* flush_failures_total_;
  Counter* merges_total_;
  Counter* purged_docs_total_;
  Gauge* ram_docs_gauge_;
  Gauge* ram_bytes_gauge_;
  Gauge* disk_segments_gauge_;
  Gauge* tombstones_gauge_;
};

}  // namespace gks

#endif  // GKS_INDEX_RT_INDEX_H_
