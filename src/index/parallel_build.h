#ifndef GKS_INDEX_PARALLEL_BUILD_H_
#define GKS_INDEX_PARALLEL_BUILD_H_

#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/thread_pool.h"
#include "index/index_builder.h"
#include "index/xml_index.h"

namespace gks {

/// One (catalog name, XML text) input document for a parallel build.
using NamedDocument = std::pair<std::string, std::string>;

/// Builds the full GKS index over `documents`, SAX-parsing the documents
/// concurrently on `pool` and then merging the per-document partial
/// indexes deterministically in document order.
///
/// Each document is parsed into a standalone delta index whose Dewey ids
/// already carry the final document id (`options.first_doc_id + position`),
/// so the sequential merge is pure concatenation + dictionary remapping
/// (MergeDeltaIndex) — the same code path the incremental updater uses.
/// The merge interns tags and values in delta-encounter order, which makes
/// the result **byte-identical** (SerializeIndex) to a sequential
/// IndexBuilder over the same documents in the same order; the
/// ParallelDeterminism integration test pins this.
///
/// Unlike IndexBuilder::AddDocument (which records a catalog entry even
/// for a failed parse), a parse failure aborts the whole build and returns
/// the first failing document's status (by document order).
///
/// `pool == nullptr` parses sequentially but still exercises the same
/// delta-merge path. `PostingList::Finalize` sorting inside each delta
/// rides the same pool via IndexBuilder::Finalize(pool).
Result<XmlIndex> BuildIndexParallel(const std::vector<NamedDocument>& documents,
                                    const IndexBuilderOptions& options,
                                    ThreadPool* pool);

}  // namespace gks

#endif  // GKS_INDEX_PARALLEL_BUILD_H_
