#include "index/categorizer.h"

#include <cassert>
#include <utility>

#include "index/node_info_table.h"

namespace gks {

std::string NodeFlagsToString(uint8_t flags) {
  std::string out;
  auto append = [&out](const char* name) {
    if (!out.empty()) out += "+";
    out += name;
  };
  if (flags & kFlagAttribute) append("AN");
  if (flags & kFlagRepeating) append("RN");
  if (flags & kFlagEntity) append("EN");
  if (flags & kFlagConnecting) append("CN");
  if (out.empty()) out = "none";
  return out;
}

StreamingCategorizer::StreamingCategorizer(NodeInfoTable* tags,
                                           Callback callback)
    : tags_(tags), callback_(std::move(callback)) {}

void StreamingCategorizer::StartDocument(uint32_t doc_id) {
  assert(frames_.empty() && "previous document not finished");
  path_.clear();
  path_.push_back(doc_id);
  frames_.emplace_back();  // sentinel frame owning the root's record
}

void StreamingCategorizer::OpenElement(std::string_view tag,
                                       uint32_t ordinal) {
  path_.push_back(ordinal);
  Frame frame;
  frame.tag_id = tags_->InternTag(tag);
  frames_.push_back(std::move(frame));
}

void StreamingCategorizer::AddText(std::string_view text) {
  Frame& frame = frames_.back();
  ++frame.text_children;
  if (!frame.direct_text.empty()) frame.direct_text.push_back(' ');
  frame.direct_text.append(text);
}

StreamingCategorizer::ChildRecord StreamingCategorizer::SummarizeAndEmitChildren(
    uint32_t ordinal) {
  Frame& frame = frames_.back();

  auto tag_count = [&frame](uint32_t tag_id) -> uint32_t {
    for (const auto& [tag, count] : frame.tag_counts) {
      if (tag == tag_id) return count;
    }
    return 0;
  };

  bool level_group = false;
  for (const auto& [tag, count] : frame.tag_counts) {
    (void)tag;
    if (count >= 2) {
      level_group = true;
      break;
    }
  }

  // Classify the children (sibling context is now complete) and collect the
  // per-branch free-attribute / repeating-group bits.
  size_t free_branches = 0;
  size_t group_branches = 0;
  size_t last_free_index = 0;
  size_t last_group_index = 0;
  size_t index = 0;
  for (ChildRecord& child : frame.children) {
    bool repeating = tag_count(child.tag_id) >= 2;
    bool attribute = child.is_leaf_text && !repeating;
    uint8_t flags = 0;
    if (attribute) flags |= kFlagAttribute;
    if (repeating) flags |= kFlagRepeating;
    if (child.is_entity) flags |= kFlagEntity;
    if (flags == 0) flags = kFlagConnecting;

    bool branch_free =
        attribute || (!repeating && child.subtree_has_free_attr);
    bool branch_group = child.subtree_has_rep_group;
    if (branch_free) {
      ++free_branches;
      last_free_index = index;
    }
    if (branch_group) {
      ++group_branches;
      last_group_index = index;
    }

    path_.push_back(child.ordinal);
    NodeFacts facts;
    facts.id = CurrentId();
    facts.tag_id = child.tag_id;
    facts.flags = flags;
    facts.child_count = child.child_count;
    facts.is_leaf_text = child.is_leaf_text;
    facts.direct_text = child.is_leaf_text ? &child.direct_text : nullptr;
    callback_(facts);
    path_.pop_back();
    ++index;
  }

  // Entity test (Def. 2.1.3): this node is the LCA of a repeating group and
  // at least one free attribute node. Two ways for the LCA to land here:
  //  (a) a repeated direct-child group (its LCA is this node) plus any free
  //      attribute anywhere below, or
  //  (b) a free attribute in one branch and a repeating group in a
  //      *different* branch.
  bool is_entity = false;
  if (level_group && free_branches > 0) {
    is_entity = true;
  } else if (free_branches > 0 && group_branches > 0) {
    bool only_one_shared_branch = free_branches == 1 && group_branches == 1 &&
                                  last_free_index == last_group_index;
    is_entity = !only_one_shared_branch;
  }

  ChildRecord record;
  record.ordinal = ordinal;
  record.tag_id = frame.tag_id;
  record.child_count =
      static_cast<uint32_t>(frame.children.size()) + frame.text_children;
  record.is_leaf_text = frame.children.empty() && frame.text_children > 0;
  record.is_entity = is_entity;
  record.subtree_has_free_attr = free_branches > 0;
  record.subtree_has_rep_group = level_group || group_branches > 0;
  if (record.is_leaf_text) record.direct_text = std::move(frame.direct_text);
  return record;
}

void StreamingCategorizer::CloseElement() {
  assert(frames_.size() >= 2 && "CloseElement without matching open");
  uint32_t ordinal = path_.back();
  ChildRecord record = SummarizeAndEmitChildren(ordinal);
  frames_.pop_back();
  path_.pop_back();

  Frame& parent = frames_.back();
  bool counted = false;
  for (auto& [tag, count] : parent.tag_counts) {
    if (tag == record.tag_id) {
      ++count;
      counted = true;
      break;
    }
  }
  if (!counted) parent.tag_counts.emplace_back(record.tag_id, 1u);
  parent.children.push_back(std::move(record));
}

void StreamingCategorizer::FinishDocument() {
  assert(frames_.size() == 1 && "unbalanced open/close before finish");
  Frame& sentinel = frames_.back();
  assert(sentinel.children.size() == 1 && "document must have one root");

  // The root has no siblings, so attribute/repeating can be decided
  // directly; entity comes from its close-time summary.
  ChildRecord& root = sentinel.children.front();
  uint8_t flags = 0;
  if (root.is_leaf_text) flags |= kFlagAttribute;
  if (root.is_entity) flags |= kFlagEntity;
  if (flags == 0) flags = kFlagConnecting;

  path_.push_back(root.ordinal);
  NodeFacts facts;
  facts.id = CurrentId();
  facts.tag_id = root.tag_id;
  facts.flags = flags;
  facts.child_count = root.child_count;
  facts.is_leaf_text = root.is_leaf_text;
  facts.direct_text = root.is_leaf_text ? &root.direct_text : nullptr;
  callback_(facts);
  path_.pop_back();

  frames_.clear();
  path_.clear();
}

}  // namespace gks
