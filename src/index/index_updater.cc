#include "index/index_updater.h"

#include <vector>

#include "index/index_builder.h"
#include "xml/sax_parser.h"

namespace gks {

Status MergeDeltaIndex(XmlIndex* index, XmlIndex&& delta) {
  // Catalog: the delta holds exactly one document.
  uint32_t new_id =
      index->catalog.AddDocument(delta.catalog.document(0).name);
  *index->catalog.mutable_document(new_id) = delta.catalog.document(0);
  (void)new_id;

  // Dictionaries: remap the delta's dense tag/value ids into the target's.
  // Iterating in dense-id order interns exactly in the delta's encounter
  // order, which is what keeps a delta-merged build byte-identical to a
  // sequential one (see BuildIndexParallel).
  std::vector<uint32_t> tag_map(delta.nodes.tag_count());
  for (uint32_t tag = 0; tag < delta.nodes.tag_count(); ++tag) {
    tag_map[tag] = index->nodes.InternTag(delta.nodes.TagName(tag));
  }
  std::vector<uint32_t> value_map(delta.nodes.value_count());
  for (uint32_t value = 0; value < delta.nodes.value_count(); ++value) {
    value_map[value] = index->nodes.InternValue(delta.nodes.Value(value));
  }

  // Node table: every delta node, with remapped dictionary ids.
  delta.nodes.ForEach([&](DeweySpan id, const NodeInfo& info) {
    NodeInfo remapped = info;
    remapped.tag_id = tag_map[info.tag_id];
    if (info.value_id != kNoValue) {
      remapped.value_id = value_map[info.value_id];
    }
    index->nodes.Put(id, remapped);
  });

  // Attribute directory: delta ids all carry the new (largest) document
  // id, so plain appends keep the directory sorted.
  for (size_t i = 0; i < delta.attributes.size(); ++i) {
    index->attributes.Add(delta.attributes.IdAt(i).ToDeweyId(),
                          tag_map[delta.attributes.TagAt(i)],
                          value_map[delta.attributes.ValueAt(i)]);
  }

  // Posting lists: same argument — each delta list extends the existing
  // one by concatenation.
  Status merge_status = Status::OK();
  delta.inverted.ForEach([&](const std::string& term,
                             const PostingList& list) {
    if (!merge_status.ok()) return;
    merge_status = index->inverted.MutableList(term)->ExtendWith(list);
  });
  return merge_status;
}

Status AppendDocument(XmlIndex* index, std::string_view xml,
                      std::string name) {
  const uint32_t base_doc_id =
      static_cast<uint32_t>(index->catalog.document_count());

  // Build a standalone delta index whose Dewey ids already carry the final
  // (offset) document id.
  IndexBuilderOptions options;
  options.first_doc_id = base_doc_id;
  IndexBuilder builder(options);
  GKS_RETURN_IF_ERROR(builder.AddDocument(xml, std::move(name)));
  Result<XmlIndex> delta_result = std::move(builder).Finalize();
  GKS_RETURN_IF_ERROR(delta_result.status());

  GKS_RETURN_IF_ERROR(MergeDeltaIndex(index, std::move(*delta_result)));
  // The index changed: cached responses keyed to the old epoch are stale.
  // Draw from the global sequence (not ++) so an epoch can never collide
  // with one handed out to a reloaded index in the same process.
  index->epoch = NextIndexEpoch();
  return Status::OK();
}

Status AppendFile(XmlIndex* index, const std::string& path) {
  std::string contents;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &contents));
  return AppendDocument(index, contents, path);
}

}  // namespace gks
