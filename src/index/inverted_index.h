#ifndef GKS_INDEX_INVERTED_INDEX_H_
#define GKS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dewey/dewey_id.h"
#include "index/posting_list.h"

namespace gks {

struct EncodedSection;  // lazy_section.h
class NodeInfoTable;    // node_info_table.h

/// Keyword -> posting-list map (Sec. 2.4). Terms are already analyzed
/// (lower-cased, stop-worded, stemmed) by the index builder; each posting
/// is the Dewey id of the element that directly contains the keyword
/// (text) or carries it as its tag name.
class InvertedIndex {
 public:
  InvertedIndex();
  ~InvertedIndex();
  InvertedIndex(InvertedIndex&&) noexcept;
  InvertedIndex& operator=(InvertedIndex&&) noexcept;

  /// Lazy-load support (format v2 mmap path): attaches the still-encoded
  /// block-format section and defers parsing the term table until first
  /// use. `owner` anchors the bytes (the mapped file) and is threaded into
  /// every posting list, whose payload blocks decode even later.
  void AttachEncoded(std::string_view bytes, bool lz,
                     std::shared_ptr<const void> owner);
  /// Forces the deferred term-table parse now (thread-safe, idempotent).
  Status EnsureDecoded() const;

  void Add(std::string_view term, const DeweyId& id);

  /// Sorts and deduplicates every list. Must be called once after the last
  /// Add and before any Find. With a pool, the per-keyword sorts fan out
  /// across its workers (each list's finalize is independent, so the
  /// result is identical regardless of scheduling).
  void Finalize(ThreadPool* pool = nullptr);

  /// Posting list for `term`, or nullptr if the term never occurs.
  const PostingList* Find(std::string_view term) const;

  /// Existing-or-new mutable list for `term` (incremental updates).
  PostingList* MutableList(std::string_view term);

  size_t term_count() const {
    RequireDecoded();
    return lists_.size();
  }
  uint64_t posting_count() const;

  /// Iterates (term, list) pairs in unspecified order.
  template <typename F>
  void ForEach(F f) const {
    RequireDecoded();
    for (const auto& [term, list] : lists_) f(term, list);
  }

  size_t MemoryUsage() const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, InvertedIndex* out);

  /// Format v2: terms in lexicographic order, each followed by its
  /// block-postings blob (posting_blocks.h). Same determinism contract as
  /// EncodeTo.
  void EncodeToBlocks(std::string* dst) const;
  /// Parses a block-format section from the front of `*input`. Each list
  /// keeps a view into the input bytes (skip table parsed, payloads
  /// deferred); `owner` must keep those bytes alive, or the caller must
  /// Materialize() every list before they go away.
  static Status DecodeFromBlocks(std::string_view* input,
                                 std::shared_ptr<const void> owner,
                                 InvertedIndex* out);
  /// Forces every block-backed list into its eager form (the eager v2
  /// deserialization path, where the encoded buffer is about to go away).
  void MaterializeAll();

  /// Format v2 rank_bounds section (block_max.h): per term in
  /// lexicographic order — mirroring EncodeToBlocks, terms are not
  /// repeated — a varint block count followed by one
  /// (weight_scaled, min_depth, max_depth) varint triple per posting
  /// block.
  void EncodeRankBoundsTo(const NodeInfoTable& nodes, std::string* dst) const;

  /// Parses a rank_bounds section payload, validates it against the
  /// loaded lists (term/block counts must line up; bounds must not
  /// contradict the skip table), and attaches the bounds to each list.
  /// Corruption with a section byte offset on any mismatch. Lists must
  /// already be decoded (call on the eager path before MaterializeAll,
  /// while block views can still be cross-checked).
  Status ApplyRankBounds(std::string_view section);

  /// Lazy variant (mmap path): parks the still-encoded section — LZ-
  /// wrapped when `lz` — and applies it inside EnsureDecoded, right after
  /// the term table parses. `owner` anchors the bytes.
  void AttachRankBounds(std::string_view bytes, bool lz,
                        std::shared_ptr<const void> owner);

 private:
  /// Accessor guard: one pointer test on eager indexes, plus one acquire
  /// load once a lazy index has parsed its term table.
  void RequireDecoded() const {
    if (pending_ != nullptr) (void)EnsureDecoded();
  }

  std::unique_ptr<EncodedSection> pending_;
  std::unique_ptr<EncodedSection> pending_bounds_;  // rank_bounds, mmap path
  std::unordered_map<std::string, PostingList, TransparentStringHash,
                     std::equal_to<>>
      lists_;
};

/// Directory of all attribute nodes, sorted in document order, with their
/// interned tag and value ids aligned by position. DI discovery (Sec. 6.2)
/// range-scans it to find the attribute nodes under an LCE node.
class AttrDirectory {
 public:
  AttrDirectory();
  ~AttrDirectory();
  AttrDirectory(AttrDirectory&&) noexcept;
  AttrDirectory& operator=(AttrDirectory&&) noexcept;

  /// Lazy-load support (format v2 mmap path); see NodeInfoTable.
  void AttachEncoded(std::string_view bytes, bool lz,
                     std::shared_ptr<const void> owner);
  Status EnsureDecoded() const;

  void Add(const DeweyId& id, uint32_t tag_id, uint32_t value_id);

  /// Sorts entries into document order. Call once after building.
  void Finalize();

  size_t size() const {
    RequireDecoded();
    return ids_.size();
  }
  DeweySpan IdAt(size_t i) const {
    RequireDecoded();
    return ids_.At(i);
  }
  uint32_t TagAt(size_t i) const {
    RequireDecoded();
    return tag_ids_[i];
  }
  uint32_t ValueAt(size_t i) const {
    RequireDecoded();
    return value_ids_[i];
  }

  /// Contiguous [begin, end) range of attribute nodes inside `prefix`'s
  /// subtree.
  std::pair<size_t, size_t> SubtreeRange(DeweySpan prefix) const {
    RequireDecoded();
    return {ids_.SubtreeBegin(prefix), ids_.SubtreeEnd(prefix)};
  }

  size_t MemoryUsage() const {
    RequireDecoded();
    return ids_.MemoryUsage() + tag_ids_.capacity() * sizeof(uint32_t) +
           value_ids_.capacity() * sizeof(uint32_t);
  }

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, AttrDirectory* out);

 private:
  void RequireDecoded() const {
    if (pending_ != nullptr) (void)EnsureDecoded();
  }

  std::unique_ptr<EncodedSection> pending_;
  PackedIds ids_;
  std::vector<uint32_t> tag_ids_;
  std::vector<uint32_t> value_ids_;
};

}  // namespace gks

#endif  // GKS_INDEX_INVERTED_INDEX_H_
