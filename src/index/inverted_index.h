#ifndef GKS_INDEX_INVERTED_INDEX_H_
#define GKS_INDEX_INVERTED_INDEX_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/hash.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dewey/dewey_id.h"
#include "index/posting_list.h"

namespace gks {

/// Keyword -> posting-list map (Sec. 2.4). Terms are already analyzed
/// (lower-cased, stop-worded, stemmed) by the index builder; each posting
/// is the Dewey id of the element that directly contains the keyword
/// (text) or carries it as its tag name.
class InvertedIndex {
 public:
  InvertedIndex() = default;
  InvertedIndex(InvertedIndex&&) = default;
  InvertedIndex& operator=(InvertedIndex&&) = default;

  void Add(std::string_view term, const DeweyId& id);

  /// Sorts and deduplicates every list. Must be called once after the last
  /// Add and before any Find. With a pool, the per-keyword sorts fan out
  /// across its workers (each list's finalize is independent, so the
  /// result is identical regardless of scheduling).
  void Finalize(ThreadPool* pool = nullptr);

  /// Posting list for `term`, or nullptr if the term never occurs.
  const PostingList* Find(std::string_view term) const;

  /// Existing-or-new mutable list for `term` (incremental updates).
  PostingList* MutableList(std::string_view term);

  size_t term_count() const { return lists_.size(); }
  uint64_t posting_count() const;

  /// Iterates (term, list) pairs in unspecified order.
  template <typename F>
  void ForEach(F f) const {
    for (const auto& [term, list] : lists_) f(term, list);
  }

  size_t MemoryUsage() const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, InvertedIndex* out);

 private:
  std::unordered_map<std::string, PostingList, TransparentStringHash,
                     std::equal_to<>>
      lists_;
};

/// Directory of all attribute nodes, sorted in document order, with their
/// interned tag and value ids aligned by position. DI discovery (Sec. 6.2)
/// range-scans it to find the attribute nodes under an LCE node.
class AttrDirectory {
 public:
  void Add(const DeweyId& id, uint32_t tag_id, uint32_t value_id);

  /// Sorts entries into document order. Call once after building.
  void Finalize();

  size_t size() const { return ids_.size(); }
  DeweySpan IdAt(size_t i) const { return ids_.At(i); }
  uint32_t TagAt(size_t i) const { return tag_ids_[i]; }
  uint32_t ValueAt(size_t i) const { return value_ids_[i]; }

  /// Contiguous [begin, end) range of attribute nodes inside `prefix`'s
  /// subtree.
  std::pair<size_t, size_t> SubtreeRange(DeweySpan prefix) const {
    return {ids_.SubtreeBegin(prefix), ids_.SubtreeEnd(prefix)};
  }

  size_t MemoryUsage() const {
    return ids_.MemoryUsage() + tag_ids_.capacity() * sizeof(uint32_t) +
           value_ids_.capacity() * sizeof(uint32_t);
  }

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, AttrDirectory* out);

 private:
  PackedIds ids_;
  std::vector<uint32_t> tag_ids_;
  std::vector<uint32_t> value_ids_;
};

}  // namespace gks

#endif  // GKS_INDEX_INVERTED_INDEX_H_
