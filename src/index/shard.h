#ifndef GKS_INDEX_SHARD_H_
#define GKS_INDEX_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "index/serialization.h"

namespace gks {

/// Repository sharding (docs/DISTRIBUTED.md): a repository of XML
/// documents is split into N contiguous *document ranges*, each built
/// into an ordinary v2 index whose Dewey document ids carry the global
/// offset (IndexBuilderOptions::first_doc_id — the same mechanism the
/// real-time segments use). Dewey order is document-major, so every
/// invariant the single-index engine relies on (sorted posting lists,
/// subtree ranges, id comparisons) holds per shard, and ranked partial
/// results from different shards merge by plain comparison: ranks are
/// potential-flow scores of a node's own subtree, directly comparable
/// across independently built indexes.

/// One shard of a split repository, as recorded in the manifest.
struct ShardSpec {
  std::string file;        // index file name, relative to the manifest
  uint32_t doc_base = 0;   // global Dewey id of the shard's document 0
  uint32_t doc_count = 0;  // documents in the shard
};

/// The manifest written next to the shard index files
/// (`MANIFEST.json`): how a coordinator — or an operator wiring worker
/// processes by hand — learns the document-range topology.
struct ShardManifest {
  std::vector<ShardSpec> shards;

  uint32_t total_documents() const {
    uint32_t total = 0;
    for (const ShardSpec& shard : shards) total += shard.doc_count;
    return total;
  }
};

/// Splits `xml_files` (one document per file, global doc ids assigned in
/// argument order — exactly the ids a single `gks index` over the same
/// list would assign) into `shard_count` contiguous ranges balanced by
/// file bytes, builds each range into `out_dir/shard_NN.gksidx`, and
/// writes `out_dir/MANIFEST.json`. With a pool, per-shard finalize sorts
/// fan out (deterministic). InvalidArgument when there are fewer files
/// than shards.
Result<ShardManifest> SplitIntoShards(const std::vector<std::string>& xml_files,
                                      size_t shard_count,
                                      const std::string& out_dir,
                                      IndexFormat format = IndexFormat::kV2,
                                      ThreadPool* pool = nullptr);

/// Manifest (de)serialization. The format is plain JSON:
///   {"version":1,"shards":[{"file":"shard_00.gksidx",
///                           "doc_base":0,"doc_count":12}, ...]}
Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path);
Result<ShardManifest> LoadShardManifest(const std::string& path);

}  // namespace gks

#endif  // GKS_INDEX_SHARD_H_
