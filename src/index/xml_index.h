#ifndef GKS_INDEX_XML_INDEX_H_
#define GKS_INDEX_XML_INDEX_H_

#include <cstdint>

#include "index/catalog.h"
#include "index/inverted_index.h"
#include "index/node_info_table.h"

namespace gks {

/// Everything the GKS search/analysis engines need at query time, produced
/// by one pass of the IndexBuilder over the XML repository (Sec. 2.4):
/// the keyword inverted index, the node-category hash tables, the
/// attribute-node directory for DI, and the document catalog.
struct XmlIndex {
  InvertedIndex inverted;
  NodeInfoTable nodes;
  AttrDirectory attributes;
  Catalog catalog;

  /// Mutation epoch: stamped from NextIndexEpoch() by every load and every
  /// in-place mutation (IndexUpdater appends, schema reconciliation) so
  /// epoch-keyed consumers — the QueryResultCache above all — never serve
  /// results computed against an older state. Process-globally unique:
  /// reloading an index file (or mapping a file whose content changed)
  /// yields a fresh epoch, so cache entries keyed to the previous
  /// incarnation can never collide with the new one. A runtime-only
  /// concept, never serialized. Mutators already require external
  /// exclusion against concurrent readers, so a plain integer suffices.
  uint64_t epoch = 0;

  /// Approximate in-memory footprint — the paper's "Index Size" column.
  size_t MemoryUsage() const {
    return inverted.MemoryUsage() + nodes.MemoryUsage() +
           attributes.MemoryUsage();
  }
};

/// Process-global monotonically increasing epoch source (never returns 0).
/// Every index load and every mutation draws from the same sequence, which
/// is what makes epochs collision-free across index incarnations within a
/// process.
uint64_t NextIndexEpoch();

}  // namespace gks

#endif  // GKS_INDEX_XML_INDEX_H_
