#ifndef GKS_INDEX_CATEGORIZER_H_
#define GKS_INDEX_CATEGORIZER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "index/node_kind.h"
#include "index/posting_list.h"

namespace gks {

class NodeInfoTable;

/// Streaming implementation of the paper's node categorization model
/// (Sec. 2.2). XML nodes arrive pre-order; each node's category is known
/// once enough of its context has been seen:
///
///  * attribute / repeating need the sibling tag counts, available when the
///    *parent* closes;
///  * entity needs the subtree shape (a repeating group plus a "free"
///    attribute node — one not hidden inside a repeating node — whose LCA
///    is the node itself), available when the node *itself* closes and is
///    propagated upward as two bits per branch.
///
/// The categorizer therefore emits one `NodeFacts` callback per element,
/// at the close of the element's parent (or at FinishDocument for the
/// root), all within a single pass over the data.
class StreamingCategorizer {
 public:
  struct NodeFacts {
    DeweySpan id;             // valid only during the callback
    uint32_t tag_id = 0;
    uint8_t flags = kFlagNone;
    uint32_t child_count = 0;     // direct children: elements + text segments
    bool is_leaf_text = false;    // element whose only children are text
    const std::string* direct_text = nullptr;  // leaf-text value, else null
  };
  using Callback = std::function<void(const NodeFacts&)>;

  /// `tags` provides tag interning (shared with the index); `callback`
  /// receives every categorized element. Both must outlive the categorizer.
  StreamingCategorizer(NodeInfoTable* tags, Callback callback);

  StreamingCategorizer(const StreamingCategorizer&) = delete;
  StreamingCategorizer& operator=(const StreamingCategorizer&) = delete;

  /// Opens an element that is the next child (ordinal `ordinal`) of the
  /// current element; for a document root, `ordinal` is pushed directly
  /// onto the document id component.
  void StartDocument(uint32_t doc_id);
  void OpenElement(std::string_view tag, uint32_t ordinal);
  /// Records one direct text segment (ordinal consumed by the caller).
  void AddText(std::string_view text);
  void CloseElement();
  /// Closes the document and emits the root's facts.
  void FinishDocument();

  /// Dewey id of the innermost open element.
  DeweySpan CurrentId() const {
    return {path_.data(), static_cast<uint32_t>(path_.size())};
  }

 private:
  struct ChildRecord {
    uint32_t ordinal = 0;
    uint32_t tag_id = 0;
    uint32_t child_count = 0;
    bool is_leaf_text = false;
    bool is_entity = false;
    bool subtree_has_free_attr = false;
    bool subtree_has_rep_group = false;
    std::string direct_text;  // kept only for leaf-text nodes
  };

  struct Frame {
    uint32_t tag_id = 0;
    uint32_t text_children = 0;
    std::string direct_text;
    // (tag_id, count) for the element children; small linear map — the
    // number of *distinct* child tags per element is tiny in practice.
    std::vector<std::pair<uint32_t, uint32_t>> tag_counts;
    std::vector<ChildRecord> children;
  };

  // Computes the close-time summary of the innermost frame and emits the
  // NodeFacts for each of its children.
  ChildRecord SummarizeAndEmitChildren(uint32_t ordinal);

  NodeInfoTable* tags_;
  Callback callback_;
  std::vector<uint32_t> path_;  // current Dewey id (doc id first)
  std::vector<Frame> frames_;
};

}  // namespace gks

#endif  // GKS_INDEX_CATEGORIZER_H_
