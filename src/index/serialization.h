#ifndef GKS_INDEX_SERIALIZATION_H_
#define GKS_INDEX_SERIALIZATION_H_

#include <string>

#include "common/result.h"
#include "common/status.h"
#include "index/xml_index.h"

namespace gks {

/// On-disk index format: magic + version header, then the catalog, node
/// table, attribute directory and inverted index sections, each
/// varint-encoded. Index preparation is "a onetime activity" (Sec. 7.1.1);
/// these functions let deployments reuse it across processes.
Status SaveIndex(const XmlIndex& index, const std::string& path);
Result<XmlIndex> LoadIndex(const std::string& path);

/// In-memory (de)serialization, used by the file functions and the tests.
std::string SerializeIndex(const XmlIndex& index);
Result<XmlIndex> DeserializeIndex(std::string_view bytes);

}  // namespace gks

#endif  // GKS_INDEX_SERIALIZATION_H_
