#ifndef GKS_INDEX_SERIALIZATION_H_
#define GKS_INDEX_SERIALIZATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "index/xml_index.h"

namespace gks {

/// On-disk index formats. Index preparation is "a onetime activity"
/// (Sec. 7.1.1); these functions let deployments reuse it across processes.
///
///   v1 ("GKSIDX01"): magic, then the catalog, node table, attribute
///     directory and inverted index sections back to back, each
///     varint-encoded. No section table — the file must be decoded front
///     to back, eagerly.
///
///   v2 ("GKSIDX02"): magic, a fixed-width little-endian section table
///     (u32 count, then per section: u32 id, u32 flags, u64 offset,
///     u64 length — offsets from the file start), then the payloads. The
///     table makes the file position-independent: any section is reachable
///     without touching the others, which is what LoadIndexMapped builds
///     on. Flags bit 0 marks an LZ-wrapped payload (common/lz.h). The node
///     table and attribute directory are LZ-wrapped v1 payloads; the
///     inverted index uses the block-postings encoding (posting_blocks.h)
///     and stays uncompressed so individual blocks decode straight from
///     the mapped bytes; the catalog is raw (too small to benefit). Since
///     PR 7 the writer also emits a rank_bounds section (per-block rank
///     upper bounds, block_max.h) that powers top-k early termination;
///     the section is OPTIONAL on read — a v2 file without it loads and
///     serves with the bounds treated as +inf (weight 1.0).
///
///   kV2NoRankBounds: writer-only knob producing a v2 file WITHOUT the
///     rank_bounds section — the exact byte stream pre-PR 7 writers
///     produced, for the backward-compat pin and for files older binaries
///     must read without surprises. Readers sniff the magic, so there is
///     no separate reader for it.
enum class IndexFormat {
  kV1 = 1,
  kV2 = 2,
  kV2NoRankBounds = 3,
};

/// Writers default to the current format.
Status SaveIndex(const XmlIndex& index, const std::string& path,
                 IndexFormat format = IndexFormat::kV2);
std::string SerializeIndex(const XmlIndex& index,
                           IndexFormat format = IndexFormat::kV2);

/// Readers sniff the magic, so either format loads through either path.
/// LoadIndex/DeserializeIndex decode everything eagerly; the returned
/// index owns all of its memory. The loaded index is stamped with a fresh
/// epoch (see XmlIndex::epoch).
Result<XmlIndex> LoadIndex(const std::string& path);
Result<XmlIndex> DeserializeIndex(std::string_view bytes);

/// Zero-copy load: maps the file read-only and attaches the still-encoded
/// v2 sections to the index, so the call itself is O(section table) — the
/// node table and attribute directory decode on first touch, and posting
/// lists decode block-at-a-time as cursors reach them. The index keeps the
/// mapping alive for as long as any section needs it. A v1 file degrades
/// to the eager path (same result, no laziness). The loaded index is
/// stamped with a fresh epoch.
Result<XmlIndex> LoadIndexMapped(const std::string& path);

/// Per-section byte accounting for `gks stats` and the size benches.
struct IndexSectionInfo {
  std::string name;  // "catalog" | "nodes" | "attributes" | "inverted" |
                     // "rank_bounds"
  uint64_t bytes = 0;    // on-disk payload bytes (after compression)
  bool compressed = false;  // LZ-wrapped on disk
};
struct IndexFileInfo {
  int version = 0;  // 1 or 2
  uint64_t file_bytes = 0;
  std::vector<IndexSectionInfo> sections;
};

/// Reads just enough of the file to attribute bytes to sections: v2 files
/// answer from the section table; v1 files are progressively decoded to
/// find the section boundaries (costs a full parse).
Result<IndexFileInfo> InspectIndexFile(const std::string& path);

}  // namespace gks

#endif  // GKS_INDEX_SERIALIZATION_H_
