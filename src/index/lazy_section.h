#ifndef GKS_INDEX_LAZY_SECTION_H_
#define GKS_INDEX_LAZY_SECTION_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "common/lz.h"
#include "common/status.h"

namespace gks {

/// The deferred-decode cell behind a lazily loaded index section (format
/// v2 mmap path). Holds a view of the still-encoded section bytes plus the
/// owner that keeps them mapped; the section's accessors trigger the
/// decode on first touch through EnsureSectionDecoded below.
///
/// Not movable (once_flag), so owning classes hold it behind a unique_ptr
/// and become move-only themselves.
struct EncodedSection {
  std::string_view bytes;            // encoded payload (maybe LZ-wrapped)
  bool lz = false;
  std::shared_ptr<const void> owner;  // keeps `bytes` alive (mmap anchor)
  std::once_flag once;
  std::atomic<bool> ready{false};
  Status status = Status::OK();  // written once, before `ready` flips
};

/// Runs `decode(payload)` exactly once per cell — LZ-unwrapping first when
/// the section is flagged — and records its Status; concurrent callers
/// block until the first finishes, later ones return the recorded Status
/// after one relaxed pointer test and one acquire load. Null cell = eager
/// object = OK.
template <typename DecodeFn>
Status EnsureSectionDecoded(EncodedSection* cell, DecodeFn decode) {
  if (cell == nullptr) return Status::OK();
  if (!cell->ready.load(std::memory_order_acquire)) {
    std::call_once(cell->once, [&] {
      std::string raw;
      std::string_view payload = cell->bytes;
      Status st = Status::OK();
      if (cell->lz) {
        st = LzDecompress(cell->bytes, &raw);
        payload = raw;
      }
      if (st.ok()) st = decode(payload);
      cell->status = st;
      cell->ready.store(true, std::memory_order_release);
    });
  }
  return cell->status;
}

}  // namespace gks

#endif  // GKS_INDEX_LAZY_SECTION_H_
