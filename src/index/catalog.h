#ifndef GKS_INDEX_CATALOG_H_
#define GKS_INDEX_CATALOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace gks {

/// Per-document bookkeeping: GKS search spans multiple XML files by
/// prefixing every Dewey id with the document id (Sec. 2.4); the catalog
/// maps those ids back to the source document.
class Catalog {
 public:
  struct DocumentInfo {
    std::string name;         // file name or caller-provided label
    uint64_t element_count = 0;
    uint64_t text_bytes = 0;
    uint32_t max_depth = 0;   // edges from document root to deepest node
  };

  /// Registers a document and returns its dense id.
  uint32_t AddDocument(std::string name);

  DocumentInfo* mutable_document(uint32_t doc_id) { return &docs_[doc_id]; }
  const DocumentInfo& document(uint32_t doc_id) const { return docs_[doc_id]; }
  size_t document_count() const { return docs_.size(); }

  /// Maximum depth across all documents (the paper's "XML Depth" column).
  uint32_t MaxDepth() const;
  uint64_t TotalElements() const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, Catalog* out);

 private:
  std::vector<DocumentInfo> docs_;
};

}  // namespace gks

#endif  // GKS_INDEX_CATALOG_H_
