#ifndef GKS_INDEX_POSTING_BLOCKS_H_
#define GKS_INDEX_POSTING_BLOCKS_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "index/posting_list.h"

namespace gks {

/// Block-compressed posting-list storage, the inverted-section payload of
/// on-disk format v2. A sorted Dewey-id list is cut into fixed-size blocks
/// (kPostingBlockSize ids); each block is prefix-delta coded against its
/// own first id, and a skip table up front records every block's first and
/// last id plus its payload extent, so readers can
///   - seek by document order without decoding skipped blocks, and
///   - decode exactly the blocks a query touches (lazy mmap path).
///
/// Blob layout (all integers varint unless noted):
///
///   id_count
///   block_count
///   skip table, one entry per block:
///     count                          ids in this block
///     payload_len                    bytes of this block's payload
///     first id                       ncomps, then raw components
///     last id (front-coded vs first) shared, fresh, fresh raw components
///   payloads, concatenated           block 0 bytes, block 1 bytes, ...
///
/// Block payload: ids 1..count-1 (id 0 lives in the skip entry). Each id is
/// coded against its predecessor: a nibble-packed header byte
/// `shared << 4 | fresh` (0xFF escapes to two varints when either nibble
/// saturates), then the components after the shared prefix. The first
/// divergent component exploits document order — when `shared <
/// prev.ncomps` the successor's component at that depth must exceed the
/// predecessor's, so it is stored as `delta - 1`; the remaining components
/// follow raw. This is what beats the v1 front coder: the hot divergent
/// component (in DBLP, the per-article ordinal, typically a 2-byte varint
/// raw) becomes a 1-byte delta for dense lists.
constexpr size_t kPostingBlockSize = 128;

/// Encodes a document-ordered, duplicate-free id sequence into the blob.
/// Deterministic (byte-identical across runs for equal input).
void EncodeBlockPostings(const PackedIds& ids, std::string* dst);

/// A parsed, non-owning view over an encoded blob. Parsing materializes
/// only the skip table (firsts/lasts/extents); block payloads stay encoded
/// until DecodeBlock. The underlying bytes must outlive the view.
class BlockPostingsView {
 public:
  BlockPostingsView() = default;

  /// Parses the header + skip table from the front of `*input`, leaving
  /// `*input` positioned after the blob. Corruption messages carry offsets
  /// relative to the start of the blob.
  static Status Parse(std::string_view* input, BlockPostingsView* out);

  size_t id_count() const { return id_count_; }
  size_t block_count() const { return counts_.size(); }
  /// Total encoded bytes (skip table + payloads), for size accounting.
  size_t encoded_size() const { return encoded_size_; }

  /// Skip-table accessors; no payload decode involved.
  DeweySpan block_first(size_t b) const { return firsts_.At(b); }
  DeweySpan block_last(size_t b) const { return lasts_.At(b); }
  uint32_t block_size(size_t b) const { return counts_[b]; }
  /// Global index of the block's first id.
  size_t block_id_begin(size_t b) const { return id_begins_[b]; }

  /// First block whose last id is >= `id` in document order, i.e. the only
  /// block that can contain the lower bound of `id`. Returns block_count()
  /// when every block ends before `id`. O(log blocks).
  size_t FindBlockLowerBound(DeweySpan id) const;

  /// Appends block `b`'s ids to `out`. Counts one block decode in the
  /// gks.index.v2.blocks_decoded_total metric.
  Status DecodeBlock(size_t b, PackedIds* out) const;

  /// Appends every id to `out` (eager materialization).
  Status DecodeAll(PackedIds* out) const;

  /// Heap bytes of the parsed skip table (size reporting).
  size_t MemoryUsage() const {
    return firsts_.MemoryUsage() + lasts_.MemoryUsage() +
           (counts_.capacity() + payload_begin_.capacity() +
            id_begins_.capacity()) *
               sizeof(uint32_t);
  }

 private:
  std::string_view payloads_;           // concatenated block payloads
  PackedIds firsts_;                    // skip table: first id per block
  PackedIds lasts_;                     // skip table: last id per block
  std::vector<uint32_t> counts_;        // ids per block
  std::vector<uint32_t> payload_begin_; // block_count()+1 offsets into payloads_
  std::vector<uint32_t> id_begins_;     // global id index of each block start
  size_t id_count_ = 0;
  size_t encoded_size_ = 0;
};

}  // namespace gks

#endif  // GKS_INDEX_POSTING_BLOCKS_H_
