#include "index/inverted_index.h"

#include <algorithm>

#include "common/varint.h"

namespace gks {

void InvertedIndex::Add(std::string_view term, const DeweyId& id) {
  auto it = lists_.find(term);
  if (it == lists_.end()) {
    it = lists_.emplace(std::string(term), PostingList()).first;
  }
  it->second.Add(id);
}

void InvertedIndex::Finalize(ThreadPool* pool) {
  if (pool == nullptr || pool->size() <= 1 || lists_.size() < 2) {
    for (auto& [term, list] : lists_) {
      (void)term;
      list.Finalize();
    }
    return;
  }
  // Per-keyword sorts are independent; fan them across the pool. The
  // gather order is the map's iteration order, but every schedule produces
  // the same per-list result, so finalization stays deterministic.
  std::vector<PostingList*> lists;
  lists.reserve(lists_.size());
  for (auto& [term, list] : lists_) {
    (void)term;
    lists.push_back(&list);
  }
  ParallelFor(pool, lists.size(), [&lists](size_t i) {
    lists[i]->Finalize();
  });
}

const PostingList* InvertedIndex::Find(std::string_view term) const {
  auto it = lists_.find(term);
  return it == lists_.end() ? nullptr : &it->second;
}

PostingList* InvertedIndex::MutableList(std::string_view term) {
  auto it = lists_.find(term);
  if (it == lists_.end()) {
    it = lists_.emplace(std::string(term), PostingList()).first;
  }
  return &it->second;
}

uint64_t InvertedIndex::posting_count() const {
  uint64_t total = 0;
  for (const auto& [term, list] : lists_) {
    (void)term;
    total += list.size();
  }
  return total;
}

size_t InvertedIndex::MemoryUsage() const {
  size_t bytes = 0;
  for (const auto& [term, list] : lists_) {
    bytes += term.capacity() + list.MemoryUsage() + sizeof(list) +
             sizeof(void*) * 2;
  }
  return bytes;
}

void InvertedIndex::EncodeTo(std::string* dst) const {
  // Emit terms in lexicographic order: the serialized index is then a
  // deterministic function of the logical contents, independent of hash-map
  // iteration or build schedule — what lets the parallel build be verified
  // byte-identical against the sequential one, and keeps on-disk indexes
  // diffable across runs.
  std::vector<const std::string*> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) {
    (void)list;
    terms.push_back(&term);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  PutVarint64(dst, lists_.size());
  for (const std::string* term : terms) {
    PutLengthPrefixed(dst, *term);
    lists_.find(*term)->second.EncodeTo(dst);
  }
}

Status InvertedIndex::DecodeFrom(std::string_view* input, InvertedIndex* out) {
  *out = InvertedIndex();
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string term;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &term));
    PostingList list;
    GKS_RETURN_IF_ERROR(PostingList::DecodeFrom(input, &list));
    out->lists_.emplace(std::move(term), std::move(list));
  }
  return Status::OK();
}

void AttrDirectory::Add(const DeweyId& id, uint32_t tag_id,
                        uint32_t value_id) {
  ids_.Add(id);
  tag_ids_.push_back(tag_id);
  value_ids_.push_back(value_id);
}

void AttrDirectory::Finalize() {
  std::vector<uint32_t> perm = ids_.SortPermutation();
  std::vector<uint32_t> tags(perm.size());
  std::vector<uint32_t> values(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    tags[i] = tag_ids_[perm[i]];
    values[i] = value_ids_[perm[i]];
  }
  ids_.ApplyPermutation(perm);
  tag_ids_ = std::move(tags);
  value_ids_ = std::move(values);
}

void AttrDirectory::EncodeTo(std::string* dst) const {
  ids_.EncodeTo(dst);
  PutVarint64(dst, tag_ids_.size());
  for (uint32_t tag : tag_ids_) PutVarint32(dst, tag);
  for (uint32_t value : value_ids_) PutVarint32(dst, value);
}

Status AttrDirectory::DecodeFrom(std::string_view* input, AttrDirectory* out) {
  *out = AttrDirectory();
  GKS_RETURN_IF_ERROR(PackedIds::DecodeFrom(input, &out->ids_));
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  if (count != out->ids_.size()) {
    return Status::Corruption("attr directory size mismatch");
  }
  out->tag_ids_.resize(count);
  out->value_ids_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    GKS_RETURN_IF_ERROR(GetVarint32(input, &out->tag_ids_[i]));
  }
  for (uint64_t i = 0; i < count; ++i) {
    GKS_RETURN_IF_ERROR(GetVarint32(input, &out->value_ids_[i]));
  }
  return Status::OK();
}

}  // namespace gks
