#include "index/inverted_index.h"

#include <algorithm>

#include "common/varint.h"
#include "index/block_max.h"
#include "index/lazy_section.h"
#include "index/posting_blocks.h"

namespace gks {

InvertedIndex::InvertedIndex() = default;
InvertedIndex::~InvertedIndex() = default;
InvertedIndex::InvertedIndex(InvertedIndex&&) noexcept = default;
InvertedIndex& InvertedIndex::operator=(InvertedIndex&&) noexcept = default;

void InvertedIndex::AttachEncoded(std::string_view bytes, bool lz,
                                  std::shared_ptr<const void> owner) {
  pending_ = std::make_unique<EncodedSection>();
  pending_->bytes = bytes;
  pending_->lz = lz;
  pending_->owner = std::move(owner);
}

Status InvertedIndex::EnsureDecoded() const {
  EncodedSection* cell = pending_.get();
  if (cell == nullptr) return Status::OK();
  return EnsureSectionDecoded(cell, [this, cell](std::string_view in) {
    InvertedIndex decoded;
    GKS_RETURN_IF_ERROR(DecodeFromBlocks(&in, cell->owner, &decoded));
    if (!in.empty()) {
      return Status::Corruption("trailing bytes after inverted index section");
    }
    // Rank bounds validate against the freshly parsed skip tables, so they
    // apply before any materialization can detach the block views. The
    // bounds are copied out by value — the section bytes are not retained.
    if (const EncodedSection* bounds = pending_bounds_.get()) {
      std::string raw;
      std::string_view payload = bounds->bytes;
      if (bounds->lz) {
        GKS_RETURN_IF_ERROR(LzDecompress(bounds->bytes, &raw));
        payload = raw;
      }
      GKS_RETURN_IF_ERROR(decoded.ApplyRankBounds(payload));
    }
    // An LZ-wrapped section decodes into a temporary buffer that dies with
    // this lambda, so the lists cannot keep block views into it. (The
    // writer never LZ-wraps this section, precisely so blocks can decode
    // straight from the mapped file.)
    if (cell->lz) decoded.MaterializeAll();
    // Single-writer under call_once; readers are gated on the ready flag.
    const_cast<InvertedIndex*>(this)->lists_ = std::move(decoded.lists_);
    return Status::OK();
  });
}

void InvertedIndex::Add(std::string_view term, const DeweyId& id) {
  RequireDecoded();
  auto it = lists_.find(term);
  if (it == lists_.end()) {
    it = lists_.emplace(std::string(term), PostingList()).first;
  }
  it->second.Add(id);
}

void InvertedIndex::Finalize(ThreadPool* pool) {
  RequireDecoded();
  if (pool == nullptr || pool->size() <= 1 || lists_.size() < 2) {
    for (auto& [term, list] : lists_) {
      (void)term;
      list.Finalize();
    }
    return;
  }
  // Per-keyword sorts are independent; fan them across the pool. The
  // gather order is the map's iteration order, but every schedule produces
  // the same per-list result, so finalization stays deterministic.
  std::vector<PostingList*> lists;
  lists.reserve(lists_.size());
  for (auto& [term, list] : lists_) {
    (void)term;
    lists.push_back(&list);
  }
  ParallelFor(pool, lists.size(), [&lists](size_t i) {
    lists[i]->Finalize();
  });
}

const PostingList* InvertedIndex::Find(std::string_view term) const {
  RequireDecoded();
  auto it = lists_.find(term);
  return it == lists_.end() ? nullptr : &it->second;
}

PostingList* InvertedIndex::MutableList(std::string_view term) {
  RequireDecoded();
  auto it = lists_.find(term);
  if (it == lists_.end()) {
    it = lists_.emplace(std::string(term), PostingList()).first;
  }
  return &it->second;
}

uint64_t InvertedIndex::posting_count() const {
  RequireDecoded();
  uint64_t total = 0;
  for (const auto& [term, list] : lists_) {
    (void)term;
    total += list.size();
  }
  return total;
}

size_t InvertedIndex::MemoryUsage() const {
  RequireDecoded();
  size_t bytes = 0;
  for (const auto& [term, list] : lists_) {
    bytes += term.capacity() + list.MemoryUsage() + sizeof(list) +
             sizeof(void*) * 2;
  }
  return bytes;
}

void InvertedIndex::EncodeTo(std::string* dst) const {
  RequireDecoded();
  // Emit terms in lexicographic order: the serialized index is then a
  // deterministic function of the logical contents, independent of hash-map
  // iteration or build schedule — what lets the parallel build be verified
  // byte-identical against the sequential one, and keeps on-disk indexes
  // diffable across runs.
  std::vector<const std::string*> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) {
    (void)list;
    terms.push_back(&term);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  PutVarint64(dst, lists_.size());
  for (const std::string* term : terms) {
    PutLengthPrefixed(dst, *term);
    lists_.find(*term)->second.EncodeTo(dst);
  }
}

Status InvertedIndex::DecodeFrom(std::string_view* input, InvertedIndex* out) {
  *out = InvertedIndex();
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string term;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &term));
    PostingList list;
    GKS_RETURN_IF_ERROR(PostingList::DecodeFrom(input, &list));
    out->lists_.emplace(std::move(term), std::move(list));
  }
  return Status::OK();
}

void InvertedIndex::EncodeToBlocks(std::string* dst) const {
  RequireDecoded();
  std::vector<const std::string*> terms;
  terms.reserve(lists_.size());
  for (const auto& [term, list] : lists_) {
    (void)list;
    terms.push_back(&term);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  PutVarint64(dst, lists_.size());
  for (const std::string* term : terms) {
    PutLengthPrefixed(dst, *term);
    lists_.find(*term)->second.EncodeBlocksTo(dst);
  }
}

Status InvertedIndex::DecodeFromBlocks(std::string_view* input,
                                       std::shared_ptr<const void> owner,
                                       InvertedIndex* out) {
  *out = InvertedIndex();
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  for (uint64_t i = 0; i < count; ++i) {
    std::string term;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &term));
    PostingList list;
    GKS_RETURN_IF_ERROR(
        PostingList::FromEncodedBlocks(input, owner, &list));
    out->lists_.emplace(std::move(term), std::move(list));
  }
  return Status::OK();
}

void InvertedIndex::MaterializeAll() {
  RequireDecoded();
  for (auto& [term, list] : lists_) {
    (void)term;
    list.Materialize();
  }
}

namespace {

// Lexicographic term order — the iteration order EncodeToBlocks writes
// and the bounds section must mirror entry for entry.
template <typename Map>
std::vector<const std::string*> SortedTermPointers(const Map& lists) {
  std::vector<const std::string*> terms;
  terms.reserve(lists.size());
  for (const auto& [term, list] : lists) {
    (void)list;
    terms.push_back(&term);
  }
  std::sort(terms.begin(), terms.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });
  return terms;
}

}  // namespace

void InvertedIndex::EncodeRankBoundsTo(const NodeInfoTable& nodes,
                                       std::string* dst) const {
  RequireDecoded();
  PutVarint64(dst, lists_.size());
  for (const std::string* term : SortedTermPointers(lists_)) {
    const PostingList& list = lists_.find(*term)->second;
    std::vector<BlockRankBound> bounds =
        ComputeBlockRankBounds(list.materialized_ids(), nodes);
    PutVarint64(dst, bounds.size());
    for (const BlockRankBound& bound : bounds) {
      PutVarint32(dst, bound.weight_scaled);
      PutVarint32(dst, bound.min_depth);
      PutVarint32(dst, bound.max_depth);
    }
  }
}

Status InvertedIndex::ApplyRankBounds(std::string_view section) {
  RequireDecoded();
  std::string_view in = section;
  auto at = [&section](std::string_view rest) {
    return " at section byte " + std::to_string(section.size() - rest.size());
  };
  auto read64 = [&](uint64_t* v) {
    return GetVarint64(&in, v).ok()
               ? Status::OK()
               : Status::Corruption("rank_bounds section truncated" + at(in));
  };
  auto read32 = [&](uint32_t* v) {
    return GetVarint32(&in, v).ok()
               ? Status::OK()
               : Status::Corruption("rank_bounds section truncated" + at(in));
  };

  uint64_t term_count = 0;
  GKS_RETURN_IF_ERROR(read64(&term_count));
  if (term_count != lists_.size()) {
    return Status::Corruption(
        "rank_bounds section lists " + std::to_string(term_count) +
        " terms, inverted index has " + std::to_string(lists_.size()) +
        at(in));
  }
  for (const std::string* term : SortedTermPointers(lists_)) {
    PostingList* list = &lists_.find(*term)->second;
    uint64_t block_count = 0;
    GKS_RETURN_IF_ERROR(read64(&block_count));
    const uint64_t expected =
        (list->size() + kPostingBlockSize - 1) / kPostingBlockSize;
    if (block_count != expected) {
      return Status::Corruption(
          "rank_bounds block count " + std::to_string(block_count) +
          " for term '" + *term + "' (list has " + std::to_string(expected) +
          " blocks)" + at(in));
    }
    std::vector<BlockRankBound> bounds(block_count);
    const BlockPostingsView* view = list->block_view();
    if (view != nullptr && view->block_count() != block_count) {
      return Status::Corruption(
          "rank_bounds block count " + std::to_string(block_count) +
          " for term '" + *term + "' does not match the skip table (" +
          std::to_string(view->block_count()) + " blocks)" + at(in));
    }
    for (uint64_t b = 0; b < block_count; ++b) {
      BlockRankBound& bound = bounds[b];
      GKS_RETURN_IF_ERROR(read32(&bound.weight_scaled));
      GKS_RETURN_IF_ERROR(read32(&bound.min_depth));
      GKS_RETURN_IF_ERROR(read32(&bound.max_depth));
      if (bound.weight_scaled == 0 || bound.weight_scaled > kRankWeightOne) {
        return Status::Corruption("rank_bounds weight " +
                                  std::to_string(bound.weight_scaled) +
                                  " out of range" + at(in));
      }
      if (bound.min_depth > bound.max_depth) {
        return Status::Corruption("rank_bounds depth range inverted" + at(in));
      }
      if (view == nullptr) continue;
      // Bounds describe fixed kPostingBlockSize blocks; a skip table
      // blocked any other way cannot line up with them index for index.
      if (view->block_id_begin(b) != b * kPostingBlockSize) {
        return Status::Corruption(
            "rank_bounds blocking does not match the skip table of term '" +
            *term + "'" + at(in));
      }
      // The skip table is ground truth for at least the block's first and
      // last id: a depth envelope excluding either cannot bound the block.
      if (view->block_first(b).size < bound.min_depth ||
          view->block_first(b).size > bound.max_depth ||
          view->block_last(b).size < bound.min_depth ||
          view->block_last(b).size > bound.max_depth) {
        return Status::Corruption("rank_bounds bound contradicts block " +
                                  std::to_string(b) + " of term '" + *term +
                                  "'" + at(in));
      }
    }
    list->set_rank_bounds(std::move(bounds));
  }
  if (!in.empty()) {
    return Status::Corruption("trailing bytes after rank_bounds section" +
                              at(in));
  }
  return Status::OK();
}

void InvertedIndex::AttachRankBounds(std::string_view bytes, bool lz,
                                     std::shared_ptr<const void> owner) {
  pending_bounds_ = std::make_unique<EncodedSection>();
  pending_bounds_->bytes = bytes;
  pending_bounds_->lz = lz;
  pending_bounds_->owner = std::move(owner);
}

AttrDirectory::AttrDirectory() = default;
AttrDirectory::~AttrDirectory() = default;
AttrDirectory::AttrDirectory(AttrDirectory&&) noexcept = default;
AttrDirectory& AttrDirectory::operator=(AttrDirectory&&) noexcept = default;

void AttrDirectory::AttachEncoded(std::string_view bytes, bool lz,
                                  std::shared_ptr<const void> owner) {
  pending_ = std::make_unique<EncodedSection>();
  pending_->bytes = bytes;
  pending_->lz = lz;
  pending_->owner = std::move(owner);
}

Status AttrDirectory::EnsureDecoded() const {
  return EnsureSectionDecoded(pending_.get(), [this](std::string_view in) {
    AttrDirectory decoded;
    GKS_RETURN_IF_ERROR(DecodeFrom(&in, &decoded));
    if (!in.empty()) {
      return Status::Corruption("trailing bytes after attr directory section");
    }
    AttrDirectory* self = const_cast<AttrDirectory*>(this);
    self->ids_ = std::move(decoded.ids_);
    self->tag_ids_ = std::move(decoded.tag_ids_);
    self->value_ids_ = std::move(decoded.value_ids_);
    return Status::OK();
  });
}

void AttrDirectory::Add(const DeweyId& id, uint32_t tag_id,
                        uint32_t value_id) {
  RequireDecoded();
  ids_.Add(id);
  tag_ids_.push_back(tag_id);
  value_ids_.push_back(value_id);
}

void AttrDirectory::Finalize() {
  RequireDecoded();
  std::vector<uint32_t> perm = ids_.SortPermutation();
  std::vector<uint32_t> tags(perm.size());
  std::vector<uint32_t> values(perm.size());
  for (size_t i = 0; i < perm.size(); ++i) {
    tags[i] = tag_ids_[perm[i]];
    values[i] = value_ids_[perm[i]];
  }
  ids_.ApplyPermutation(perm);
  tag_ids_ = std::move(tags);
  value_ids_ = std::move(values);
}

void AttrDirectory::EncodeTo(std::string* dst) const {
  RequireDecoded();
  ids_.EncodeTo(dst);
  PutVarint64(dst, tag_ids_.size());
  for (uint32_t tag : tag_ids_) PutVarint32(dst, tag);
  for (uint32_t value : value_ids_) PutVarint32(dst, value);
}

Status AttrDirectory::DecodeFrom(std::string_view* input, AttrDirectory* out) {
  *out = AttrDirectory();
  GKS_RETURN_IF_ERROR(PackedIds::DecodeFrom(input, &out->ids_));
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  if (count != out->ids_.size()) {
    return Status::Corruption("attr directory size mismatch");
  }
  out->tag_ids_.resize(count);
  out->value_ids_.resize(count);
  for (uint64_t i = 0; i < count; ++i) {
    GKS_RETURN_IF_ERROR(GetVarint32(input, &out->tag_ids_[i]));
  }
  for (uint64_t i = 0; i < count; ++i) {
    GKS_RETURN_IF_ERROR(GetVarint32(input, &out->value_ids_[i]));
  }
  return Status::OK();
}

}  // namespace gks
