#include "index/node_info_table.h"

#include <algorithm>

#include "common/varint.h"
#include "index/lazy_section.h"

namespace gks {

NodeInfoTable::NodeInfoTable() = default;
NodeInfoTable::~NodeInfoTable() = default;
NodeInfoTable::NodeInfoTable(NodeInfoTable&&) noexcept = default;
NodeInfoTable& NodeInfoTable::operator=(NodeInfoTable&&) noexcept = default;

void NodeInfoTable::AttachEncoded(std::string_view bytes, bool lz,
                                  std::shared_ptr<const void> owner) {
  pending_ = std::make_unique<EncodedSection>();
  pending_->bytes = bytes;
  pending_->lz = lz;
  pending_->owner = std::move(owner);
}

Status NodeInfoTable::EnsureDecoded() const {
  return EnsureSectionDecoded(pending_.get(), [this](std::string_view in) {
    NodeInfoTable decoded;
    GKS_RETURN_IF_ERROR(DecodeFrom(&in, &decoded));
    if (!in.empty()) {
      return Status::Corruption("trailing bytes after node table section");
    }
    // Single-writer under call_once; readers are gated on the ready flag,
    // so adopting the decoded state through const is safe.
    NodeInfoTable* self = const_cast<NodeInfoTable*>(this);
    self->map_ = std::move(decoded.map_);
    self->tags_ = std::move(decoded.tags_);
    self->tag_ids_ = std::move(decoded.tag_ids_);
    self->values_ = std::move(decoded.values_);
    self->value_ids_ = std::move(decoded.value_ids_);
    self->counts_ = decoded.counts_;
    return Status::OK();
  });
}

std::string NodeInfoTable::EncodeKey(DeweySpan id) {
  // Fixed-width big-endian components keep keys compact and unambiguous.
  std::string key;
  key.reserve(id.size * sizeof(uint32_t));
  for (uint32_t i = 0; i < id.size; ++i) {
    uint32_t c = id.data[i];
    key.push_back(static_cast<char>(c >> 24));
    key.push_back(static_cast<char>(c >> 16));
    key.push_back(static_cast<char>(c >> 8));
    key.push_back(static_cast<char>(c));
  }
  return key;
}

void NodeInfoTable::DecodeKey(const std::string& key,
                              std::vector<uint32_t>* components) {
  components->clear();
  for (size_t i = 0; i + 4 <= key.size(); i += 4) {
    components->push_back(
        (static_cast<uint32_t>(static_cast<uint8_t>(key[i])) << 24) |
        (static_cast<uint32_t>(static_cast<uint8_t>(key[i + 1])) << 16) |
        (static_cast<uint32_t>(static_cast<uint8_t>(key[i + 2])) << 8) |
        static_cast<uint32_t>(static_cast<uint8_t>(key[i + 3])));
  }
}

bool NodeInfoTable::AddFlags(DeweySpan id, uint8_t flags) {
  RequireDecoded();
  auto it = map_.find(EncodeKey(id));
  if (it == map_.end()) return false;
  NodeInfo& info = it->second;
  uint8_t before = info.flags;
  info.flags |= flags;
  if ((flags & (kFlagAttribute | kFlagRepeating | kFlagEntity)) != 0 &&
      (info.flags & kFlagConnecting) != 0) {
    info.flags = static_cast<uint8_t>(info.flags & ~kFlagConnecting);
  }
  // Keep the Table 5 tallies in sync with the flag changes.
  if (!(before & kFlagAttribute) && (info.flags & kFlagAttribute)) {
    ++counts_.attribute;
  }
  if (!(before & kFlagRepeating) && (info.flags & kFlagRepeating)) {
    ++counts_.repeating;
  }
  if (!(before & kFlagEntity) && (info.flags & kFlagEntity)) {
    ++counts_.entity;
  }
  if ((before & kFlagConnecting) && !(info.flags & kFlagConnecting)) {
    --counts_.connecting;
  }
  return true;
}

uint32_t NodeInfoTable::InternTag(std::string_view tag) {
  RequireDecoded();
  auto it = tag_ids_.find(tag);
  if (it != tag_ids_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(tags_.size());
  tags_.emplace_back(tag);
  tag_ids_.emplace(std::string(tag), id);
  return id;
}

bool NodeInfoTable::FindTag(std::string_view tag, uint32_t* tag_id) const {
  RequireDecoded();
  auto it = tag_ids_.find(tag);
  if (it == tag_ids_.end()) return false;
  *tag_id = it->second;
  return true;
}

uint32_t NodeInfoTable::AddValue(std::string value) {
  RequireDecoded();
  values_.push_back(std::move(value));
  return static_cast<uint32_t>(values_.size() - 1);
}

uint32_t NodeInfoTable::InternValue(std::string_view value) {
  RequireDecoded();
  if (value_ids_.size() != values_.size()) {
    // First use after construction/deserialization: build the reverse map.
    value_ids_.clear();
    for (size_t i = 0; i < values_.size(); ++i) {
      value_ids_.emplace(values_[i], static_cast<uint32_t>(i));
    }
  }
  auto it = value_ids_.find(value);
  if (it != value_ids_.end()) return it->second;
  uint32_t id = AddValue(std::string(value));
  value_ids_.emplace(values_.back(), id);
  return id;
}

void NodeInfoTable::Put(DeweySpan id, const NodeInfo& info) {
  RequireDecoded();
  map_[EncodeKey(id)] = info;
  ++counts_.total;
  if (info.is_attribute()) ++counts_.attribute;
  if (info.is_repeating()) ++counts_.repeating;
  if (info.is_entity()) ++counts_.entity;
  if (info.is_connecting()) ++counts_.connecting;
}

const NodeInfo* NodeInfoTable::Find(DeweySpan id) const {
  RequireDecoded();
  auto it = map_.find(EncodeKey(id));
  return it == map_.end() ? nullptr : &it->second;
}

uint32_t NodeInfoTable::IsEntity(DeweySpan id) const {
  const NodeInfo* info = Find(id);
  return (info != nullptr && info->is_entity()) ? info->child_count : 0;
}

uint32_t NodeInfoTable::IsElement(DeweySpan id) const {
  const NodeInfo* info = Find(id);
  if (info == nullptr) return 0;
  return (info->is_repeating() || info->is_connecting()) ? info->child_count
                                                         : 0;
}

bool NodeInfoTable::LowestEntityAncestor(DeweySpan id, DeweyId* out) const {
  // Walk prefixes from the node up toward the document root. The minimum
  // meaningful length is 2 components (document id + root ordinal).
  for (uint32_t len = id.size; len >= 1; --len) {
    DeweySpan prefix{id.data, len};
    const NodeInfo* info = Find(prefix);
    if (info != nullptr && info->is_entity()) {
      *out = prefix.ToDeweyId();
      return true;
    }
  }
  return false;
}

size_t NodeInfoTable::MemoryUsage() const {
  RequireDecoded();
  size_t bytes = 0;
  for (const auto& [key, info] : map_) {
    bytes += key.capacity() + sizeof(info) + sizeof(void*) * 2;
  }
  for (const auto& tag : tags_) bytes += tag.capacity() + sizeof(tag);
  for (const auto& value : values_) bytes += value.capacity() + sizeof(value);
  return bytes;
}

void NodeInfoTable::EncodeTo(std::string* dst) const {
  RequireDecoded();
  PutVarint64(dst, tags_.size());
  for (const std::string& tag : tags_) PutLengthPrefixed(dst, tag);
  PutVarint64(dst, values_.size());
  for (const std::string& value : values_) PutLengthPrefixed(dst, value);
  // Emit nodes in document order and front-code the Dewey keys: adjacent
  // nodes share most of their path, so each entry stores the shared prefix
  // length plus the fresh suffix components as varints.
  std::vector<const std::string*> ordered;
  ordered.reserve(map_.size());
  for (const auto& [key, info] : map_) {
    (void)info;
    ordered.push_back(&key);
  }
  // Byte-wise order of the fixed-width big-endian keys IS document order.
  std::sort(ordered.begin(), ordered.end(),
            [](const std::string* a, const std::string* b) { return *a < *b; });

  PutVarint64(dst, map_.size());
  std::vector<uint32_t> previous;
  std::vector<uint32_t> current;
  for (const std::string* key : ordered) {
    DecodeKey(*key, &current);
    uint32_t shared = 0;
    uint32_t limit =
        static_cast<uint32_t>(std::min(previous.size(), current.size()));
    while (shared < limit && previous[shared] == current[shared]) ++shared;
    PutVarint32(dst, shared);
    PutVarint32(dst, static_cast<uint32_t>(current.size()) - shared);
    for (size_t i = shared; i < current.size(); ++i) {
      PutVarint32(dst, current[i]);
    }
    previous = current;

    const NodeInfo& info = map_.find(*key)->second;
    dst->push_back(static_cast<char>(info.flags));
    PutVarint32(dst, info.child_count);
    PutVarint32(dst, info.tag_id);
    PutVarint32(dst, info.value_id == kNoValue ? 0 : info.value_id + 1);
  }
}

Status NodeInfoTable::DecodeFrom(std::string_view* input, NodeInfoTable* out) {
  *out = NodeInfoTable();
  uint64_t tag_count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &tag_count));
  for (uint64_t i = 0; i < tag_count; ++i) {
    std::string tag;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &tag));
    out->tags_.push_back(tag);
    out->tag_ids_.emplace(std::move(tag), static_cast<uint32_t>(i));
  }
  uint64_t value_count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &value_count));
  for (uint64_t i = 0; i < value_count; ++i) {
    std::string value;
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(input, &value));
    out->values_.push_back(std::move(value));
  }
  uint64_t node_count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &node_count));
  std::vector<uint32_t> previous;
  for (uint64_t i = 0; i < node_count; ++i) {
    uint32_t shared = 0;
    uint32_t fresh = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(input, &shared));
    GKS_RETURN_IF_ERROR(GetVarint32(input, &fresh));
    if (shared > previous.size()) {
      return Status::Corruption("front-coded node key exceeds predecessor");
    }
    if (fresh > 1u << 20) {
      return Status::Corruption("implausible node key length");
    }
    previous.resize(shared);
    for (uint32_t j = 0; j < fresh; ++j) {
      uint32_t component = 0;
      GKS_RETURN_IF_ERROR(GetVarint32(input, &component));
      previous.push_back(component);
    }
    std::string key = EncodeKey(DeweySpan{
        previous.data(), static_cast<uint32_t>(previous.size())});
    if (input->size() < 1) return Status::Corruption("truncated node info");
    NodeInfo info;
    info.flags = static_cast<uint8_t>(input->front());
    input->remove_prefix(1);
    GKS_RETURN_IF_ERROR(GetVarint32(input, &info.child_count));
    GKS_RETURN_IF_ERROR(GetVarint32(input, &info.tag_id));
    uint32_t value_plus_one = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(input, &value_plus_one));
    info.value_id = value_plus_one == 0 ? kNoValue : value_plus_one - 1;
    if (info.tag_id >= out->tags_.size()) {
      return Status::Corruption("node tag id out of range");
    }
    if (info.value_id != kNoValue && info.value_id >= out->values_.size()) {
      return Status::Corruption("node value id out of range");
    }
    ++out->counts_.total;
    if (info.is_attribute()) ++out->counts_.attribute;
    if (info.is_repeating()) ++out->counts_.repeating;
    if (info.is_entity()) ++out->counts_.entity;
    if (info.is_connecting()) ++out->counts_.connecting;
    out->map_.emplace(std::move(key), info);
  }
  return Status::OK();
}

}  // namespace gks
