#include "index/shard.h"

#include <sys/stat.h>

#include <cstdio>
#include <utility>

#include "common/json_value.h"
#include "common/json_writer.h"
#include "index/index_builder.h"
#include "xml/sax_parser.h"

namespace gks {
namespace {

std::string ShardFileName(size_t shard) {
  char name[32];
  std::snprintf(name, sizeof(name), "shard_%02zu.gksidx", shard);
  return name;
}

/// Contiguous partition of `sizes` into `shard_count` non-empty runs,
/// greedily balanced by bytes. Returns the first file index of each
/// shard plus a terminating sizes.size().
std::vector<size_t> PartitionByBytes(const std::vector<uint64_t>& sizes,
                                     size_t shard_count) {
  std::vector<size_t> bounds;
  bounds.push_back(0);
  uint64_t remaining_bytes = 0;
  for (uint64_t size : sizes) remaining_bytes += size;
  size_t next = 0;
  for (size_t shard = 0; shard < shard_count; ++shard) {
    size_t shards_left = shard_count - shard;
    uint64_t target = remaining_bytes / shards_left;
    uint64_t taken = 0;
    size_t files_left = sizes.size() - next;
    size_t count = 0;
    // Every shard takes at least one file and must leave one per
    // remaining shard; within that, stop once the byte target is met.
    while (count < files_left - (shards_left - 1) &&
           (count == 0 || taken < target)) {
      taken += sizes[next + count];
      ++count;
    }
    next += count;
    remaining_bytes -= taken;
    bounds.push_back(next);
  }
  return bounds;
}

}  // namespace

Result<ShardManifest> SplitIntoShards(const std::vector<std::string>& xml_files,
                                      size_t shard_count,
                                      const std::string& out_dir,
                                      IndexFormat format, ThreadPool* pool) {
  if (shard_count == 0) {
    return Status::InvalidArgument("shard count must be >= 1");
  }
  if (xml_files.size() < shard_count) {
    return Status::InvalidArgument(
        "cannot split " + std::to_string(xml_files.size()) + " documents into " +
        std::to_string(shard_count) + " shards (need >= 1 document each)");
  }
  ::mkdir(out_dir.c_str(), 0777);  // EEXIST is fine; open errors surface below

  std::vector<uint64_t> sizes;
  sizes.reserve(xml_files.size());
  for (const std::string& path : xml_files) {
    struct stat st{};
    if (::stat(path.c_str(), &st) != 0) {
      return Status::IOError("cannot stat " + path);
    }
    sizes.push_back(static_cast<uint64_t>(st.st_size));
  }
  std::vector<size_t> bounds = PartitionByBytes(sizes, shard_count);

  ShardManifest manifest;
  for (size_t shard = 0; shard < shard_count; ++shard) {
    size_t begin = bounds[shard];
    size_t end = bounds[shard + 1];
    IndexBuilderOptions options;
    // Global Dewey ids: document j of this shard gets id doc_base + j,
    // exactly the id a single-index build over the full list assigns.
    options.first_doc_id = static_cast<uint32_t>(begin);
    IndexBuilder builder(options);
    for (size_t i = begin; i < end; ++i) {
      GKS_RETURN_IF_ERROR(builder.AddFile(xml_files[i]));
    }
    GKS_ASSIGN_OR_RETURN(XmlIndex index, std::move(builder).Finalize(pool));
    ShardSpec spec;
    spec.file = ShardFileName(shard);
    spec.doc_base = static_cast<uint32_t>(begin);
    spec.doc_count = static_cast<uint32_t>(end - begin);
    GKS_RETURN_IF_ERROR(SaveIndex(index, out_dir + "/" + spec.file, format));
    manifest.shards.push_back(std::move(spec));
  }
  GKS_RETURN_IF_ERROR(
      WriteShardManifest(manifest, out_dir + "/MANIFEST.json"));
  return manifest;
}

Status WriteShardManifest(const ShardManifest& manifest,
                          const std::string& path) {
  JsonWriter json;
  json.BeginObject();
  json.Key("version").UInt(1);
  json.Key("shards").BeginArray();
  for (const ShardSpec& shard : manifest.shards) {
    json.BeginObject();
    json.Key("file").String(shard.file);
    json.Key("doc_base").UInt(shard.doc_base);
    json.Key("doc_count").UInt(shard.doc_count);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return xml::WriteStringToFile(path, json.str() + "\n");
}

Result<ShardManifest> LoadShardManifest(const std::string& path) {
  std::string text;
  GKS_RETURN_IF_ERROR(xml::ReadFileToString(path, &text));
  GKS_ASSIGN_OR_RETURN(JsonValue root, JsonValue::Parse(text));
  const JsonValue* shards = root.Find("shards");
  if (shards == nullptr || !shards->is_array()) {
    return Status::Corruption("shard manifest has no 'shards' array: " + path);
  }
  ShardManifest manifest;
  uint32_t expected_base = 0;
  for (const JsonValue& entry : shards->items()) {
    ShardSpec spec;
    const JsonValue* file = entry.Find("file");
    const JsonValue* doc_base = entry.Find("doc_base");
    const JsonValue* doc_count = entry.Find("doc_count");
    if (file == nullptr || !file->is_string() || doc_base == nullptr ||
        doc_count == nullptr) {
      return Status::Corruption("malformed shard entry in " + path);
    }
    spec.file = file->GetString();
    spec.doc_base = static_cast<uint32_t>(doc_base->GetInt());
    spec.doc_count = static_cast<uint32_t>(doc_count->GetInt());
    if (spec.doc_base != expected_base || spec.doc_count == 0) {
      return Status::Corruption(
          "shard ranges must be contiguous and non-empty in " + path);
    }
    expected_base += spec.doc_count;
    manifest.shards.push_back(std::move(spec));
  }
  if (manifest.shards.empty()) {
    return Status::Corruption("shard manifest lists no shards: " + path);
  }
  return manifest;
}

}  // namespace gks
