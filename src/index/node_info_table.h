#ifndef GKS_INDEX_NODE_INFO_TABLE_H_
#define GKS_INDEX_NODE_INFO_TABLE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "dewey/dewey_id.h"
#include "index/node_kind.h"
#include "index/posting_list.h"

namespace gks {

struct EncodedSection;  // lazy_section.h

/// The paper keeps two hash tables — `entityHash` (entity nodes) and
/// `elementHash` (repeating + connecting nodes) — each mapping a Dewey id
/// to the node's direct-child count (Sec. 2.4). This class stores one map
/// of Dewey id -> NodeInfo (flags + child count + tag + optional attribute
/// value) and exposes the paper's `isEntity` / `isElement` functions on
/// top, plus tag/value dictionaries shared with DI discovery.
class NodeInfoTable {
 public:
  NodeInfoTable();
  ~NodeInfoTable();
  NodeInfoTable(NodeInfoTable&&) noexcept;
  NodeInfoTable& operator=(NodeInfoTable&&) noexcept;

  /// Lazy-load support (format v2 mmap path): attaches the still-encoded
  /// section bytes — LZ-wrapped when `lz` — and defers the decode until
  /// the first accessor call. `owner` anchors the bytes (the mapped file).
  void AttachEncoded(std::string_view bytes, bool lz,
                     std::shared_ptr<const void> owner);
  /// Forces the deferred decode now (thread-safe, idempotent) and returns
  /// its status. A failed decode leaves the table readable but empty.
  Status EnsureDecoded() const;

  /// Interns `tag`, returning a dense id. Idempotent per distinct string.
  uint32_t InternTag(std::string_view tag);
  /// Looks up an already-interned tag without interning; false if unknown.
  bool FindTag(std::string_view tag, uint32_t* tag_id) const;
  const std::string& TagName(uint32_t tag_id) const {
    RequireDecoded();
    return tags_[tag_id];
  }
  size_t tag_count() const {
    RequireDecoded();
    return tags_.size();
  }

  /// Stores an attribute value for DI discovery; returns its dense id.
  uint32_t AddValue(std::string value);
  /// Deduplicating variant: returns the existing id when the same string
  /// was interned before (the reverse map is built lazily, so it also
  /// works on indexes loaded from disk).
  uint32_t InternValue(std::string_view value);
  const std::string& Value(uint32_t value_id) const {
    RequireDecoded();
    return values_[value_id];
  }
  size_t value_count() const {
    RequireDecoded();
    return values_.size();
  }

  void Put(DeweySpan id, const NodeInfo& info);
  void Put(const DeweyId& id, const NodeInfo& info) {
    Put(DeweySpan::Of(id), info);
  }

  /// Returns the node's info or nullptr if the id names no element.
  const NodeInfo* Find(DeweySpan id) const;
  const NodeInfo* Find(const DeweyId& id) const {
    return Find(DeweySpan::Of(id));
  }

  /// Paper API: number of direct children if the node is an entity node,
  /// 0 otherwise ("returns ... if true, null otherwise").
  uint32_t IsEntity(DeweySpan id) const;
  /// Paper API: child count if the node is a repeating/connecting node.
  uint32_t IsElement(DeweySpan id) const;

  /// Deepest self-or-ancestor of `id` (within the same document) that is an
  /// entity node; false if none exists. `out` receives the entity's id.
  bool LowestEntityAncestor(DeweySpan id, DeweyId* out) const;

  size_t size() const {
    RequireDecoded();
    return map_.size();
  }

  /// Iterates every (id, info) pair in unspecified order. The DeweySpan is
  /// valid only during the callback.
  template <typename F>
  void ForEach(F f) const {
    RequireDecoded();
    std::vector<uint32_t> components;
    for (const auto& [key, info] : map_) {
      DecodeKey(key, &components);
      f(DeweySpan{components.data(),
                  static_cast<uint32_t>(components.size())},
        info);
    }
  }

  /// Adds category flags to an existing node (used by the schema-aware
  /// reconciliation pass); returns false if the node is unknown. Clears
  /// the connecting flag when a positive category is added and keeps the
  /// category tallies consistent.
  bool AddFlags(DeweySpan id, uint8_t flags);

  /// Category tallies for the Table 5 experiment. A node with both EN and
  /// RN flags counts toward both tallies, mirroring the paper ("its entry
  /// is present in both the hash tables").
  struct CategoryCounts {
    uint64_t attribute = 0;
    uint64_t repeating = 0;
    uint64_t entity = 0;
    uint64_t connecting = 0;
    uint64_t total = 0;  // total categorized element nodes
  };
  const CategoryCounts& counts() const {
    RequireDecoded();
    return counts_;
  }

  /// Approximate heap footprint for index-size reporting.
  size_t MemoryUsage() const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, NodeInfoTable* out);

 private:
  static std::string EncodeKey(DeweySpan id);
  static void DecodeKey(const std::string& key,
                        std::vector<uint32_t>* components);

  /// Accessor guard: one pointer test on eager tables, plus one acquire
  /// load once a lazy table has decoded.
  void RequireDecoded() const {
    if (pending_ != nullptr) (void)EnsureDecoded();
  }

  std::unique_ptr<EncodedSection> pending_;
  std::unordered_map<std::string, NodeInfo, TransparentStringHash,
                     std::equal_to<>>
      map_;
  std::vector<std::string> tags_;
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      tag_ids_;
  std::vector<std::string> values_;
  // Lazy reverse map for InternValue; rebuilt on first use after a load.
  std::unordered_map<std::string, uint32_t, TransparentStringHash,
                     std::equal_to<>>
      value_ids_;
  CategoryCounts counts_;
};

}  // namespace gks

#endif  // GKS_INDEX_NODE_INFO_TABLE_H_
