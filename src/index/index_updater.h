#ifndef GKS_INDEX_INDEX_UPDATER_H_
#define GKS_INDEX_INDEX_UPDATER_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "index/xml_index.h"

namespace gks {

/// Incremental maintenance: appends new documents to an already finalized
/// index without rebuilding it. The paper treats index preparation as a
/// one-time activity (Sec. 7.1.1); real deployments receive new documents,
/// and GKS's Dewey scheme makes appends cheap — every id of a new document
/// is prefixed with a fresh, larger document id, so it sorts after all
/// existing postings and each posting list extends by concatenation.
///
/// Tag and value dictionaries of the delta are remapped into the target
/// index's interning tables; categorization of the *new* document is
/// computed exactly as in a fresh build (existing documents are untouched
/// — categories are per-instance, so they cannot change).
///
/// Every successful append bumps `index->epoch`, invalidating
/// QueryResultCache entries keyed against the previous state.
Status AppendDocument(XmlIndex* index, std::string_view xml,
                      std::string name);

/// Reads and appends the file at `path`.
Status AppendFile(XmlIndex* index, const std::string& path);

/// Merges a finalized single-document delta index (whose Dewey ids already
/// carry a document id larger than every document in `index`) into
/// `index`: catalog entry, remapped dictionaries and node table, attribute
/// directory and posting-list concatenation. Shared by AppendDocument and
/// the parallel index build; does NOT bump the epoch (AppendDocument
/// does, and a fresh parallel build has no stale readers).
Status MergeDeltaIndex(XmlIndex* index, XmlIndex&& delta);

}  // namespace gks

#endif  // GKS_INDEX_INDEX_UPDATER_H_
