#include "index/posting_blocks.h"

#include <algorithm>

#include "common/metrics.h"
#include "common/simd/kernels.h"
#include "common/varint.h"

namespace gks {
namespace {

// v2 storage instruments (docs/OBSERVABILITY.md): every payload decode is
// one unit of the work the lazy path defers; the counter is how you see a
// query's touched-block footprint.
Counter* BlocksDecodedCounter() {
  static Counter* counter = MetricsRegistry::Global().GetCounter(
      "gks.index.v2.blocks_decoded_total");
  return counter;
}

size_t SharedPrefix(DeweySpan a, DeweySpan b) {
  size_t n = std::min(a.size, b.size);
  size_t s = 0;
  while (s < n && a.data[s] == b.data[s]) ++s;
  return s;
}

void EncodeDeltaId(DeweySpan prev, DeweySpan id, std::string* dst) {
  const uint32_t shared = static_cast<uint32_t>(SharedPrefix(prev, id));
  const uint32_t fresh = id.size - shared;  // >= 1: ids are distinct + sorted
  if (shared < 15 && fresh < 15) {
    dst->push_back(static_cast<char>((shared << 4) | fresh));
  } else {
    dst->push_back(static_cast<char>(0xff));
    PutVarint32(dst, shared);
    PutVarint32(dst, fresh);
  }
  uint32_t c = shared;
  if (shared < prev.size) {
    // Document order guarantees id[shared] > prev[shared] when the ids
    // diverge before prev ends, so the delta is stored off-by-one.
    PutVarint32(dst, id.data[c] - prev.data[c] - 1);
    ++c;
  }
  for (; c < id.size; ++c) PutVarint32(dst, id.data[c]);
}

// Decodes one delta-coded id in place over its predecessor's components.
Status DecodeDeltaId(std::string_view* in, std::vector<uint32_t>* comps) {
  uint8_t header = 0;
  if (in->empty()) return Status::Corruption("posting block truncated");
  header = static_cast<uint8_t>(in->front());
  in->remove_prefix(1);
  uint32_t shared, fresh;
  if (header != 0xff) {
    shared = header >> 4;
    fresh = header & 0x0f;
  } else {
    GKS_RETURN_IF_ERROR(GetVarint32(in, &shared));
    GKS_RETURN_IF_ERROR(GetVarint32(in, &fresh));
  }
  if (fresh == 0 || shared > comps->size() ||
      shared + fresh > (1u << 20)) {
    return Status::Corruption("posting block delta header out of range");
  }
  uint32_t first = 0;
  GKS_RETURN_IF_ERROR(GetVarint32(in, &first));
  if (shared < comps->size()) first += (*comps)[shared] + 1;
  comps->resize(shared + fresh);
  (*comps)[shared] = first;
  for (uint32_t c = shared + 1; c < shared + fresh; ++c) {
    GKS_RETURN_IF_ERROR(GetVarint32(in, &(*comps)[c]));
  }
  return Status::OK();
}

void PutRawId(DeweySpan id, std::string* dst) {
  PutVarint32(dst, id.size);
  for (uint32_t c = 0; c < id.size; ++c) PutVarint32(dst, id.data[c]);
}

}  // namespace

void EncodeBlockPostings(const PackedIds& ids, std::string* dst) {
  const size_t n = ids.size();
  const size_t blocks = (n + kPostingBlockSize - 1) / kPostingBlockSize;
  PutVarint64(dst, n);
  PutVarint64(dst, blocks);

  // Encode payloads first (into a scratch buffer) so the skip table can
  // record exact payload extents.
  std::string payloads;
  std::vector<uint32_t> payload_lens;
  payload_lens.reserve(blocks);
  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * kPostingBlockSize;
    const size_t end = std::min(n, begin + kPostingBlockSize);
    const size_t before = payloads.size();
    for (size_t i = begin + 1; i < end; ++i) {
      EncodeDeltaId(ids.At(i - 1), ids.At(i), &payloads);
    }
    payload_lens.push_back(static_cast<uint32_t>(payloads.size() - before));
  }

  for (size_t b = 0; b < blocks; ++b) {
    const size_t begin = b * kPostingBlockSize;
    const size_t end = std::min(n, begin + kPostingBlockSize);
    DeweySpan first = ids.At(begin);
    DeweySpan last = ids.At(end - 1);
    PutVarint32(dst, static_cast<uint32_t>(end - begin));
    PutVarint32(dst, payload_lens[b]);
    PutRawId(first, dst);
    const uint32_t shared = static_cast<uint32_t>(SharedPrefix(first, last));
    PutVarint32(dst, shared);
    PutVarint32(dst, last.size - shared);
    for (uint32_t c = shared; c < last.size; ++c) {
      PutVarint32(dst, last.data[c]);
    }
  }
  dst->append(payloads);
}

Status BlockPostingsView::Parse(std::string_view* input,
                                BlockPostingsView* out) {
  const std::string_view blob = *input;
  auto at = [&blob](std::string_view rest) {
    return " at blob byte " + std::to_string(blob.size() - rest.size());
  };
  std::string_view in = blob;
  uint64_t id_count = 0, block_count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(&in, &id_count));
  GKS_RETURN_IF_ERROR(GetVarint64(&in, &block_count));
  if (block_count > id_count || id_count > (1ull << 40)) {
    return Status::Corruption("posting blob counts implausible" + at(in));
  }
  if (id_count > 0 && block_count == 0) {
    return Status::Corruption("posting blob has ids but no blocks" + at(in));
  }
  out->id_count_ = id_count;
  out->counts_.clear();
  out->counts_.reserve(block_count);
  out->payload_begin_.assign(1, 0);
  out->payload_begin_.reserve(block_count + 1);
  out->id_begins_.clear();
  out->id_begins_.reserve(block_count);
  out->firsts_ = PackedIds();
  out->lasts_ = PackedIds();

  std::vector<uint32_t> comps;
  uint64_t ids_seen = 0;
  uint64_t payload_total = 0;
  for (uint64_t b = 0; b < block_count; ++b) {
    uint32_t count = 0, payload_len = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(&in, &count));
    GKS_RETURN_IF_ERROR(GetVarint32(&in, &payload_len));
    if (count == 0 || count > kPostingBlockSize) {
      return Status::Corruption("posting block count out of range" + at(in));
    }
    uint32_t ncomps = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(&in, &ncomps));
    if (ncomps == 0 || ncomps > (1u << 20)) {
      return Status::Corruption("posting block first id malformed" + at(in));
    }
    comps.resize(ncomps);
    for (uint32_t c = 0; c < ncomps; ++c) {
      GKS_RETURN_IF_ERROR(GetVarint32(&in, &comps[c]));
    }
    out->firsts_.Add(DeweySpan{comps.data(), ncomps});
    uint32_t shared = 0, fresh = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(&in, &shared));
    GKS_RETURN_IF_ERROR(GetVarint32(&in, &fresh));
    // shared==ncomps && fresh==0 means last == first, impossible for a
    // multi-id block of distinct sorted ids.
    if (shared > ncomps || shared + fresh > (1u << 20) ||
        (count > 1 && fresh == 0 && shared == ncomps)) {
      return Status::Corruption("posting block last id malformed" + at(in));
    }
    comps.resize(shared + fresh);
    for (uint32_t c = shared; c < shared + fresh; ++c) {
      GKS_RETURN_IF_ERROR(GetVarint32(&in, &comps[c]));
    }
    out->lasts_.Add(
        DeweySpan{comps.data(), static_cast<uint32_t>(comps.size())});
    out->counts_.push_back(count);
    out->id_begins_.push_back(static_cast<uint32_t>(ids_seen));
    ids_seen += count;
    payload_total += payload_len;
    out->payload_begin_.push_back(static_cast<uint32_t>(payload_total));
  }
  if (ids_seen != id_count) {
    return Status::Corruption("posting blob block counts sum to " +
                              std::to_string(ids_seen) + ", header says " +
                              std::to_string(id_count));
  }
  if (in.size() < payload_total) {
    return Status::Corruption("posting blob payloads truncated" + at(in));
  }
  out->payloads_ = in.substr(0, payload_total);
  in.remove_prefix(payload_total);
  out->encoded_size_ = blob.size() - in.size();
  *input = in;
  return Status::OK();
}

size_t BlockPostingsView::FindBlockLowerBound(DeweySpan id) const {
  // First block whose last id >= id; blocks are sorted, so binary search
  // over the skip table's `lasts_`.
  size_t lo = 0, hi = block_count();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (lasts_.At(mid).Compare(id) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

Status BlockPostingsView::DecodeBlock(size_t b, PackedIds* out) const {
  DeweySpan first = firsts_.At(b);
  out->Add(first);
  std::string_view payload = payloads_.substr(
      payload_begin_[b], payload_begin_[b + 1] - payload_begin_[b]);
  const uint32_t count = counts_[b];
  if (count > 1) {
    // Dispatched decode kernel (src/common/simd/kernels.h): appends the
    // delta-coded ids straight into the PackedIds flat storage. Every
    // tier accepts exactly the byte streams the reference decoder below
    // accepts, so the success path never diverges.
    const simd::Kernels& kernels = simd::Active();
    thread_local std::vector<uint32_t> comps;
    comps.assign(first.data, first.data + first.size);
    const size_t consumed = kernels.decode_delta_ids(
        reinterpret_cast<const uint8_t*>(payload.data()), payload.size(),
        count, &comps, out->mutable_raw_components(),
        out->mutable_raw_offsets());
    if (consumed != payload.size()) {
      // Malformed payload (or trailing bytes): re-run the Status-carrying
      // reference decoder for the exact corruption message. Partial
      // appends stay in `out`, as they always have — every caller
      // discards the container on error.
      std::vector<uint32_t> ref(first.data, first.data + first.size);
      for (uint32_t i = 1; i < count; ++i) {
        GKS_RETURN_IF_ERROR(DecodeDeltaId(&payload, &ref));
      }
      return Status::Corruption("posting block " + std::to_string(b) +
                                " has trailing bytes");
    }
    kernels.decode_calls->Increment();
  } else if (!payload.empty()) {
    return Status::Corruption("posting block " + std::to_string(b) +
                              " has trailing bytes");
  }
  BlocksDecodedCounter()->Add(1);
  return Status::OK();
}

Status BlockPostingsView::DecodeAll(PackedIds* out) const {
  for (size_t b = 0; b < block_count(); ++b) {
    GKS_RETURN_IF_ERROR(DecodeBlock(b, out));
  }
  return Status::OK();
}

}  // namespace gks
