#include "index/segment_merge.h"

#include <algorithm>
#include <map>

namespace gks {

size_t SizeTier(uint64_t bytes) {
  constexpr uint64_t kBase = 64 * 1024;
  size_t tier = 0;
  uint64_t ceiling = kBase;
  while (bytes > ceiling && tier < 32) {
    ceiling *= 4;
    ++tier;
  }
  return tier;
}

std::vector<size_t> PickMergeInputs(const std::vector<uint64_t>& segment_bytes,
                                    size_t fanout) {
  if (fanout < 2) return {};
  std::map<size_t, std::vector<size_t>> tiers;  // tier -> member indices
  for (size_t i = 0; i < segment_bytes.size(); ++i) {
    tiers[SizeTier(segment_bytes[i])].push_back(i);
  }
  for (auto& [tier, members] : tiers) {
    (void)tier;
    if (members.size() < fanout) continue;
    // Merge the tier's smallest members; stable sort keeps oldest-first
    // among equals so the pick is deterministic.
    std::stable_sort(members.begin(), members.end(),
                     [&](size_t a, size_t b) {
                       return segment_bytes[a] < segment_bytes[b];
                     });
    members.resize(fanout);
    // Commit-time bookkeeping is simpler over ascending indices.
    std::sort(members.begin(), members.end());
    return members;
  }
  return {};
}

std::vector<RtDocument> MergeDocstores(
    const std::vector<std::vector<RtDocument>>& inputs,
    const std::vector<uint32_t>& tombstones_sorted, uint32_t new_first_doc_id,
    std::vector<std::pair<uint32_t, uint32_t>>* id_map) {
  std::vector<RtDocument> merged;
  uint32_t next = new_first_doc_id;
  for (const std::vector<RtDocument>& input : inputs) {
    for (const RtDocument& doc : input) {
      if (std::binary_search(tombstones_sorted.begin(),
                             tombstones_sorted.end(), doc.doc_id)) {
        continue;  // purged: the merged segment simply never contains it
      }
      if (id_map != nullptr) id_map->emplace_back(doc.doc_id, next);
      RtDocument survivor = doc;
      survivor.doc_id = next++;
      merged.push_back(std::move(survivor));
    }
  }
  return merged;
}

}  // namespace gks
