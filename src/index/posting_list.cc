#include "index/posting_list.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>

#include "common/metrics.h"
#include "common/simd/kernels.h"
#include "common/varint.h"
#include "index/posting_blocks.h"

namespace gks {

int DeweySpan::Compare(const DeweySpan& other) const {
  uint32_t limit = std::min(size, other.size);
  for (uint32_t i = 0; i < limit; ++i) {
    if (data[i] != other.data[i]) return data[i] < other.data[i] ? -1 : 1;
  }
  if (size == other.size) return 0;
  return size < other.size ? -1 : 1;
}

bool DeweySpan::IsPrefixOf(const DeweySpan& other) const {
  if (size > other.size) return false;
  for (uint32_t i = 0; i < size; ++i) {
    if (data[i] != other.data[i]) return false;
  }
  return true;
}

int DeweySpan::CompareToSubtree(const DeweySpan& prefix) const {
  uint32_t limit = std::min(size, prefix.size);
  for (uint32_t i = 0; i < limit; ++i) {
    if (data[i] != prefix.data[i]) return data[i] < prefix.data[i] ? -1 : 1;
  }
  if (size >= prefix.size) return 0;  // prefix is self-or-ancestor: inside
  return -1;  // strict ancestor of the subtree root sorts before the subtree
}

void PackedIds::Add(DeweySpan span) {
  components_.insert(components_.end(), span.data, span.data + span.size);
  offsets_.push_back(static_cast<uint32_t>(components_.size()));
}

void PackedIds::AppendRange(const PackedIds& src, size_t begin, size_t end) {
  if (begin >= end) return;
  const uint32_t src_base = src.offsets_[begin];
  const uint32_t dst_base = static_cast<uint32_t>(components_.size());
  components_.insert(components_.end(),
                     src.components_.begin() + src_base,
                     src.components_.begin() + src.offsets_[end]);
  // Rebase the source offsets in one gather-shift kernel pass:
  // dst_base + (src.offsets_[i] - src_base), in uint32 wraparound
  // arithmetic, identical for every dispatch tier.
  const simd::Kernels& kernels = simd::Active();
  const size_t old_size = offsets_.size();
  offsets_.resize(old_size + (end - begin));
  kernels.shift_u32(src.offsets_.data() + begin + 1, end - begin,
                    dst_base - src_base, offsets_.data() + old_size);
  kernels.gather_calls->Increment();
}

std::vector<uint32_t> PackedIds::SortPermutation() const {
  std::vector<uint32_t> perm(size());
  std::iota(perm.begin(), perm.end(), 0u);
  std::sort(perm.begin(), perm.end(), [this](uint32_t a, uint32_t b) {
    return At(a).Compare(At(b)) < 0;
  });
  return perm;
}

void PackedIds::ApplyPermutation(const std::vector<uint32_t>& perm) {
  PackedIds sorted;
  sorted.components_.reserve(components_.size());
  sorted.offsets_.reserve(offsets_.size());
  for (uint32_t i : perm) sorted.Add(At(i));
  *this = std::move(sorted);
}

namespace {

// Shared gallop skeleton: `before(i)` is true while entry i sorts before
// the answer. Doubling probes from `from` bracket the answer in
// O(log distance), then a binary search inside the bracket pins it.
template <typename Before>
size_t GallopSearch(size_t from, size_t size, const Before& before) {
  if (from >= size || !before(from)) return from;
  size_t step = 1;
  size_t lo = from;  // invariant: before(lo)
  while (lo + step < size && before(lo + step)) {
    lo += step;
    step *= 2;
  }
  size_t hi = std::min(lo + step, size);  // !before(hi) or hi == size
  ++lo;
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (before(mid)) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

size_t PackedIds::SubtreeBeginFrom(DeweySpan prefix, size_t from) const {
  return GallopSearch(from, size(), [this, prefix](size_t i) {
    return At(i).CompareToSubtree(prefix) < 0;
  });
}

size_t PackedIds::SubtreeEndFrom(DeweySpan prefix, size_t from) const {
  return GallopSearch(from, size(), [this, prefix](size_t i) {
    return At(i).CompareToSubtree(prefix) <= 0;
  });
}

size_t PackedIds::LowerBoundFrom(DeweySpan id, size_t from) const {
  return GallopSearch(from, size(), [this, id](size_t i) {
    return At(i).Compare(id) < 0;
  });
}

size_t PackedIds::UpperBoundFrom(DeweySpan id, size_t from) const {
  return GallopSearch(from, size(), [this, id](size_t i) {
    return At(i).Compare(id) <= 0;
  });
}

size_t PackedIds::SubtreeBegin(DeweySpan prefix) const {
  size_t lo = 0;
  size_t hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (At(mid).CompareToSubtree(prefix) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

size_t PackedIds::SubtreeEnd(DeweySpan prefix) const {
  size_t lo = 0;
  size_t hi = size();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (At(mid).CompareToSubtree(prefix) <= 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void PackedIds::EncodeTo(std::string* dst) const {
  // Front coding: consecutive ids in a sorted list share long prefixes
  // (same document, same entry subtree), so each id stores only the length
  // of the prefix shared with its predecessor plus the fresh suffix. This
  // is what keeps the serialized index smaller than the source XML.
  PutVarint64(dst, size());
  DeweySpan previous{nullptr, 0};
  for (size_t i = 0; i < size(); ++i) {
    DeweySpan span = At(i);
    uint32_t shared = 0;
    uint32_t limit = std::min(span.size, previous.size);
    while (shared < limit && span.data[shared] == previous.data[shared]) {
      ++shared;
    }
    PutVarint32(dst, shared);
    PutVarint32(dst, span.size - shared);
    for (uint32_t j = shared; j < span.size; ++j) {
      PutVarint32(dst, span.data[j]);
    }
    previous = span;
  }
}

Status PackedIds::DecodeFrom(std::string_view* input, PackedIds* out) {
  *out = PackedIds();
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(input, &count));
  std::vector<uint32_t> previous;
  for (uint64_t i = 0; i < count; ++i) {
    uint32_t shared = 0;
    uint32_t fresh = 0;
    GKS_RETURN_IF_ERROR(GetVarint32(input, &shared));
    GKS_RETURN_IF_ERROR(GetVarint32(input, &fresh));
    if (shared > previous.size()) {
      return Status::Corruption("front-coded prefix exceeds predecessor");
    }
    if (fresh > 1u << 20) return Status::Corruption("implausible id length");
    previous.resize(shared);
    for (uint32_t j = 0; j < fresh; ++j) {
      uint32_t component = 0;
      GKS_RETURN_IF_ERROR(GetVarint32(input, &component));
      previous.push_back(component);
    }
    out->Add(DeweySpan{previous.data(),
                       static_cast<uint32_t>(previous.size())});
  }
  return Status::OK();
}

// The lazy cell behind a block-backed list. once_flag pins the struct in
// place (not movable), hence the unique_ptr indirection and the move-only
// PostingList.
struct PostingList::BlockBacking {
  BlockPostingsView view;
  std::shared_ptr<const void> owner;  // keeps the encoded bytes alive
  std::once_flag once;
  std::atomic<bool> ready{false};
  Status status = Status::OK();  // written once, before `ready` flips
};

PostingList::PostingList() = default;
PostingList::~PostingList() = default;
PostingList::PostingList(PostingList&&) noexcept = default;
PostingList& PostingList::operator=(PostingList&&) noexcept = default;

Status PostingList::FromEncodedBlocks(std::string_view* input,
                                      std::shared_ptr<const void> owner,
                                      PostingList* out) {
  *out = PostingList();
  auto backing = std::make_unique<BlockBacking>();
  GKS_RETURN_IF_ERROR(BlockPostingsView::Parse(input, &backing->view));
  backing->owner = std::move(owner);
  out->backing_ = std::move(backing);
  out->finalized_ = true;
  return Status::OK();
}

const BlockPostingsView* PostingList::block_view() const {
  return backing_ != nullptr ? &backing_->view : nullptr;
}

const PackedIds& PostingList::materialized_ids() const {
  if (backing_ != nullptr &&
      !backing_->ready.load(std::memory_order_acquire)) {
    std::call_once(backing_->once, [this] {
      PackedIds decoded;
      Status st = backing_->view.DecodeAll(&decoded);
      if (st.ok()) {
        ids_ = std::move(decoded);
      } else {
        backing_->status = st;  // list reads as empty; status tells why
      }
      backing_->ready.store(true, std::memory_order_release);
    });
  }
  return ids_;
}

bool PostingList::materialized() const {
  return backing_ == nullptr ||
         backing_->ready.load(std::memory_order_acquire);
}

Status PostingList::materialize_status() const {
  if (backing_ != nullptr && backing_->ready.load(std::memory_order_acquire)) {
    return backing_->status;
  }
  return Status::OK();
}

size_t PostingList::size() const {
  if (backing_ != nullptr &&
      !backing_->ready.load(std::memory_order_acquire)) {
    return backing_->view.id_count();  // header answer, no decode
  }
  return ids_.size();
}

DeweySpan PostingList::first_id() const {
  if (backing_ != nullptr &&
      !backing_->ready.load(std::memory_order_acquire)) {
    return backing_->view.block_first(0);
  }
  return ids_.At(0);
}

DeweySpan PostingList::last_id() const {
  if (backing_ != nullptr &&
      !backing_->ready.load(std::memory_order_acquire)) {
    return backing_->view.block_last(backing_->view.block_count() - 1);
  }
  return ids_.At(ids_.size() - 1);
}

size_t PostingList::encoded_block_count() const {
  return backing_ != nullptr ? backing_->view.block_count() : 0;
}

size_t PostingList::MemoryUsage() const {
  size_t total = ids_.MemoryUsage();
  if (backing_ != nullptr) total += backing_->view.MemoryUsage();
  return total;
}

PackedIds* PostingList::MutableIds() {
  if (backing_ != nullptr) {
    materialized_ids();
    backing_.reset();  // mutation invalidates the encoded blob
  }
  return &ids_;
}

void PostingList::Finalize() {
  if (finalized_) return;
  finalized_ = true;
  PackedIds* ids = MutableIds();
  std::vector<uint32_t> perm = ids->SortPermutation();
  PackedIds sorted;
  for (size_t i = 0; i < perm.size(); ++i) {
    DeweySpan span = ids->At(perm[i]);
    if (i > 0 && span.Compare(ids->At(perm[i - 1])) == 0) continue;
    sorted.Add(span);
  }
  *ids = std::move(sorted);
}

Status PostingList::ExtendWith(const PostingList& tail) {
  if (tail.empty()) return Status::OK();
  Finalize();  // an empty or unfinalized receiver becomes sorted first
  if (!empty() && At(size() - 1).Compare(tail.At(0)) >= 0) {
    return Status::InvalidArgument(
        "ExtendWith requires the tail to sort after the existing postings");
  }
  PackedIds* ids = MutableIds();
  for (size_t i = 0; i < tail.size(); ++i) ids->Add(tail.At(i));
  return Status::OK();
}

Status PostingList::DecodeFrom(std::string_view* input, PostingList* out) {
  *out = PostingList();
  GKS_RETURN_IF_ERROR(PackedIds::DecodeFrom(input, &out->ids_));
  out->finalized_ = true;
  return Status::OK();
}

void PostingList::EncodeBlocksTo(std::string* dst) const {
  EncodeBlockPostings(materialized_ids(), dst);
}

}  // namespace gks
