#include "index/rt_segment.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/lz.h"
#include "common/varint.h"
#include "index/index_builder.h"

namespace gks {
namespace {

constexpr std::string_view kDocstoreMagic = "GKSDOC01";

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    if (errno == ENOENT) {
      return Status::NotFound("'" + path + "' does not exist");
    }
    return Status::IOError("open '" + path + "': " + std::strerror(errno));
  }
  char buf[1 << 16];
  size_t n;
  out->clear();
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) out->append(buf, n);
  bool failed = std::ferror(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("read '" + path + "' failed");
  return Status::OK();
}

Status WriteFileBytes(const std::string& path, std::string_view bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return Status::IOError("create '" + path + "': " + std::strerror(errno));
  }
  size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  bool failed = written != bytes.size() || std::fflush(f) != 0;
  std::fclose(f);
  if (failed) return Status::IOError("write '" + path + "' failed");
  return Status::OK();
}

}  // namespace

Result<XmlIndex> BuildSegmentIndex(const std::vector<RtDocument>& docs) {
  if (docs.empty()) {
    return Status::InvalidArgument("segment build needs at least one doc");
  }
  IndexBuilderOptions options;
  options.first_doc_id = docs.front().doc_id;
  IndexBuilder builder(options);
  uint32_t expected = docs.front().doc_id;
  for (const RtDocument& doc : docs) {
    if (doc.doc_id != expected) {
      return Status::InvalidArgument(
          "segment docs must be contiguous: expected id " +
          std::to_string(expected) + ", got " + std::to_string(doc.doc_id));
    }
    GKS_RETURN_IF_ERROR(builder.AddDocument(doc.xml, doc.name));
    ++expected;
  }
  return std::move(builder).Finalize();
}

Status WriteDocstore(const std::string& path,
                     const std::vector<RtDocument>& docs) {
  std::string payload;
  PutVarint64(&payload, docs.size());
  for (const RtDocument& doc : docs) {
    PutVarint32(&payload, doc.doc_id);
    PutLengthPrefixed(&payload, doc.name);
    PutLengthPrefixed(&payload, doc.xml);
  }
  std::string file(kDocstoreMagic);
  LzCompress(payload, &file);
  return WriteFileBytes(path, file);
}

Result<std::vector<RtDocument>> ReadDocstore(const std::string& path) {
  std::string contents;
  GKS_RETURN_IF_ERROR(ReadFileBytes(path, &contents));
  std::string_view input(contents);
  if (input.size() < kDocstoreMagic.size() ||
      input.substr(0, kDocstoreMagic.size()) != kDocstoreMagic) {
    return Status::Corruption("'" + path + "' is not a GKSDOC01 docstore");
  }
  input.remove_prefix(kDocstoreMagic.size());
  std::string payload;
  GKS_RETURN_IF_ERROR(LzDecompress(input, &payload));
  std::string_view cursor(payload);
  uint64_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint64(&cursor, &count));
  std::vector<RtDocument> docs;
  docs.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    RtDocument doc;
    GKS_RETURN_IF_ERROR(GetVarint32(&cursor, &doc.doc_id));
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &doc.name));
    GKS_RETURN_IF_ERROR(GetLengthPrefixed(&cursor, &doc.xml));
    docs.push_back(std::move(doc));
  }
  if (!cursor.empty()) {
    return Status::Corruption("docstore '" + path + "' has trailing bytes");
  }
  return docs;
}

bool SegmentSetSnapshot::IsDeleted(uint32_t doc_id) const {
  if (deleted == nullptr) return false;
  return std::binary_search(deleted->begin(), deleted->end(), doc_id);
}

const SegmentView* SegmentSetSnapshot::SegmentFor(uint32_t doc_id) const {
  // Segments are sorted by doc_base with disjoint ranges: find the last
  // segment starting at or before doc_id and check its extent.
  auto it = std::upper_bound(
      segments.begin(), segments.end(), doc_id,
      [](uint32_t id, const SegmentView& view) { return id < view.doc_base; });
  if (it == segments.begin()) return nullptr;
  --it;
  if (doc_id < it->doc_base + it->doc_count) return &*it;
  return nullptr;
}

const Catalog::DocumentInfo* SegmentSetSnapshot::Document(
    uint32_t doc_id) const {
  const SegmentView* view = SegmentFor(doc_id);
  if (view == nullptr) return nullptr;
  return &view->index->catalog.document(doc_id - view->doc_base);
}

uint64_t SegmentSetSnapshot::TotalDocuments() const {
  uint64_t total = 0;
  for (const SegmentView& view : segments) total += view.doc_count;
  return total;
}

uint64_t SegmentSetSnapshot::LiveDocuments() const {
  uint64_t total = TotalDocuments();
  uint64_t dead = deleted == nullptr ? 0 : deleted->size();
  return total >= dead ? total - dead : 0;
}

}  // namespace gks
