#include "index/posting_cursor.h"

#include <algorithm>

#include "common/metrics.h"

namespace gks {
namespace {

// One skip hit = one block the seek jumped using only the skip table,
// i.e. a block's worth of postings that never got decoded
// (docs/OBSERVABILITY.md).
Counter* SkipHitsCounter() {
  static Counter* counter =
      MetricsRegistry::Global().GetCounter("gks.index.v2.skip_hits_total");
  return counter;
}

}  // namespace

PostingCursor::PostingCursor(const PostingList& list) {
  if (list.block_view() != nullptr && !list.materialized()) {
    view_ = list.block_view();
    size_ = view_->id_count();
  } else {
    // Eager lists, and block-backed lists someone already materialized:
    // the array path is strictly cheaper then.
    eager_ = &list.materialized_ids();
    size_ = eager_->size();
  }
}

size_t PostingCursor::BlockForIndex(size_t pos) const {
  // Binary search: last block whose id_begin <= pos.
  size_t lo = 0, hi = view_->block_count();
  while (hi - lo > 1) {
    size_t mid = lo + (hi - lo) / 2;
    if (view_->block_id_begin(mid) <= pos) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

void PostingCursor::LoadBlockForPosition() const {
  // Sequential consumption steps to the next block; seeks may jump. Both
  // resolve through id_begins, with a fast path for the +1 case.
  size_t b;
  if (block_ != SIZE_MAX && block_ + 1 < view_->block_count() &&
      pos_ >= view_->block_id_begin(block_ + 1) &&
      (block_ + 2 >= view_->block_count() ||
       pos_ < view_->block_id_begin(block_ + 2))) {
    b = block_ + 1;
  } else {
    b = BlockForIndex(pos_);
  }
  if (b == block_) {
    offset_ = pos_ - view_->block_id_begin(b);
    return;
  }
  scratch_.Clear();
  Status st = view_->DecodeBlock(b, &scratch_);
  if (!st.ok()) {
    status_ = st;
    size_ = pos_;  // reads AtEnd from here on
    return;
  }
  block_ = b;
  offset_ = pos_ - view_->block_id_begin(b);
}

DeweySpan PostingCursor::Head() const {
  if (eager_ != nullptr) return eager_->At(pos_);
  if (block_ == SIZE_MAX || offset_ >= scratch_.size()) {
    LoadBlockForPosition();
  }
  if (!status_.ok() || offset_ >= scratch_.size()) return DeweySpan{};
  return scratch_.At(offset_);
}

void PostingCursor::SeekLowerBound(DeweySpan target) {
  if (AtEnd()) return;
  if (eager_ != nullptr) {
    pos_ = eager_->LowerBoundFrom(target, pos_);
    return;
  }
  // Current block can answer iff its last id reaches the target.
  if (block_ != SIZE_MAX && view_->block_last(block_).Compare(target) >= 0) {
    offset_ = scratch_.LowerBoundFrom(target, offset_);
    pos_ = view_->block_id_begin(block_) + offset_;
    return;
  }
  // Skip-table walk: first block at or after the current one whose last id
  // reaches the target. Every block passed over is postings the seek never
  // decoded. With no decoded block (fresh cursor, or after SeekPastBlock
  // left pos_ mid-list) the walk starts at the block holding pos_ — and
  // pos_ itself stays a floor, so the seek never moves backwards.
  const size_t start = block_ == SIZE_MAX ? BlockForIndex(pos_) : block_ + 1;
  size_t lo = start, hi = view_->block_count();
  while (lo < hi) {
    size_t mid = lo + (hi - lo) / 2;
    if (view_->block_last(mid).Compare(target) < 0) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  if (lo > start) SkipHitsCounter()->Add(lo - start);
  if (lo == view_->block_count()) {
    pos_ = size_;  // past every posting
    return;
  }
  pos_ = std::max(pos_, view_->block_id_begin(lo));
  LoadBlockForPosition();
  if (!status_.ok()) return;
  offset_ = scratch_.LowerBoundFrom(target, offset_);
  pos_ = view_->block_id_begin(lo) + offset_;
}

bool PostingCursor::SeekToSubtree(DeweySpan prefix) {
  if (AtEnd()) return false;
  if (eager_ != nullptr) {
    pos_ = eager_->SubtreeBeginFrom(prefix, pos_);
    return pos_ < size_ && eager_->At(pos_).CompareToSubtree(prefix) == 0;
  }
  if (block_ == SIZE_MAX ||
      view_->block_last(block_).CompareToSubtree(prefix) < 0) {
    const size_t start = block_ == SIZE_MAX ? BlockForIndex(pos_) : block_ + 1;
    size_t lo = start, hi = view_->block_count();
    while (lo < hi) {
      size_t mid = lo + (hi - lo) / 2;
      if (view_->block_last(mid).CompareToSubtree(prefix) < 0) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    if (lo > start) SkipHitsCounter()->Add(lo - start);
    if (lo == view_->block_count()) {
      pos_ = size_;
      return false;
    }
    pos_ = std::max(pos_, view_->block_id_begin(lo));
    LoadBlockForPosition();
    if (!status_.ok()) return false;
    offset_ = scratch_.SubtreeBeginFrom(prefix, offset_);
    pos_ = view_->block_id_begin(lo) + offset_;
  } else {
    offset_ = scratch_.SubtreeBeginFrom(prefix, offset_);
    pos_ = view_->block_id_begin(block_) + offset_;
  }
  if (AtEnd()) return false;
  DeweySpan head = Head();
  return head.size > 0 && head.CompareToSubtree(prefix) == 0;
}

void PostingCursor::EmitWhileDocBelow(uint32_t doc_end, PackedIds* out) {
  while (!AtEnd()) {
    DeweySpan head = Head();
    if (head.size == 0 || head.data[0] >= doc_end) return;
    out->Add(head);
    Next();
  }
}

size_t PostingCursor::block_count() const {
  if (view_ != nullptr) return view_->block_count();
  return (size_ + kPostingBlockSize - 1) / kPostingBlockSize;
}

size_t PostingCursor::block_index() const {
  if (view_ != nullptr) return BlockForIndex(pos_);
  return pos_ / kPostingBlockSize;
}

DeweySpan PostingCursor::BlockFirst(size_t b) const {
  if (view_ != nullptr) return view_->block_first(b);
  return eager_->At(b * kPostingBlockSize);
}

DeweySpan PostingCursor::BlockLast(size_t b) const {
  if (view_ != nullptr) return view_->block_last(b);
  return eager_->At(std::min(size_, (b + 1) * kPostingBlockSize) - 1);
}

void PostingCursor::SeekPastBlock(size_t b) {
  if (AtEnd()) return;
  if (eager_ != nullptr) {
    pos_ = std::max(pos_, std::min(size_, (b + 1) * kPostingBlockSize));
    return;
  }
  if (b + 1 >= view_->block_count()) {
    pos_ = size_;
    return;
  }
  const size_t target = view_->block_id_begin(b + 1);
  if (target <= pos_) return;
  // One skip hit per block jumped over without a decode (the block holding
  // pos_ counts unless it is the one already decoded).
  const size_t from = block_index();
  SkipHitsCounter()->Add(b + 1 - from - (from == block_ ? 1 : 0));
  pos_ = target;
  // Drop the decoded-block association: pos_ now sits in an undecoded
  // block, and the seeks above re-anchor from pos_ when block_ is unset.
  block_ = SIZE_MAX;
  offset_ = 0;
  scratch_.Clear();
}

void PostingCursor::EmitAll(PackedIds* out) {
  if (eager_ != nullptr) {
    out->AppendRange(*eager_, pos_, size_);
    pos_ = size_;
    return;
  }
  while (pos_ < size_) {
    if (block_ == SIZE_MAX || offset_ >= scratch_.size()) {
      LoadBlockForPosition();
      if (!status_.ok()) return;
    }
    out->AppendRange(scratch_, offset_, scratch_.size());
    pos_ += scratch_.size() - offset_;
    offset_ = scratch_.size();
  }
}

}  // namespace gks
