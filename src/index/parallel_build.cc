#include "index/parallel_build.h"

#include <optional>

#include "common/metrics.h"
#include "common/trace.h"
#include "index/index_updater.h"

namespace gks {

Result<XmlIndex> BuildIndexParallel(const std::vector<NamedDocument>& documents,
                                    const IndexBuilderOptions& options,
                                    ThreadPool* pool) {
  MetricsRegistry::Global()
      .GetCounter("gks.index.parallel.builds_total")
      ->Increment();

  // Phase 1: every document becomes a standalone finalized delta index on
  // the pool. first_doc_id pins the final Dewey document id up front, so
  // deltas are position-independent and the merge is order-preserving.
  std::vector<std::optional<Result<XmlIndex>>> deltas(documents.size());
  {
    ScopedSpan span("build.parse_shards");
    span.AddItems(documents.size());
    ParallelFor(pool, documents.size(), [&](size_t i) {
      IndexBuilderOptions delta_options = options;
      delta_options.first_doc_id =
          options.first_doc_id + static_cast<uint32_t>(i);
      IndexBuilder builder(delta_options);
      Status status =
          builder.AddDocument(documents[i].second, documents[i].first);
      if (!status.ok()) {
        deltas[i].emplace(std::move(status));
        return;
      }
      deltas[i].emplace(std::move(builder).Finalize(pool));
    });
  }
  for (std::optional<Result<XmlIndex>>& delta : deltas) {
    if (!delta->ok()) return delta->status();  // first failure in doc order
  }

  // Phase 2: deterministic sequential merge in document order — the same
  // concatenation + remap path the incremental updater uses, which interns
  // dictionaries in encounter order and therefore reproduces the
  // sequential build byte for byte.
  XmlIndex out;
  {
    ScopedSpan span("build.merge_deltas");
    span.AddItems(deltas.size());
    for (std::optional<Result<XmlIndex>>& delta : deltas) {
      Status status = MergeDeltaIndex(&out, std::move(*delta).value());
      if (!status.ok()) return status;
    }
  }
  return out;
}

}  // namespace gks
