#ifndef GKS_INDEX_POSTING_CURSOR_H_
#define GKS_INDEX_POSTING_CURSOR_H_

#include <cstddef>
#include <cstdint>

#include "common/status.h"
#include "index/posting_blocks.h"
#include "index/posting_list.h"

namespace gks {

/// Forward-only reader over one posting list that works identically on
/// both backends:
///   - eager PackedIds: positions map 1:1 onto the array, seeks reuse the
///     galloping searches;
///   - block-backed (format v2): at most one block is decoded at a time
///     into a scratch buffer, and seeks first walk the *skip table* —
///     blocks whose last id sorts before the target are jumped without
///     decoding (counted in gks.index.v2.skip_hits_total).
///
/// This is the intended access path for query evaluation: it keeps the
/// lazy-load promise (touched blocks only) that PostingList's
/// materializing accessors would break. The underlying list must outlive
/// the cursor and stay unmodified.
class PostingCursor {
 public:
  explicit PostingCursor(const PostingList& list);

  size_t size() const { return size_; }
  bool AtEnd() const { return pos_ >= size_; }
  /// Global document-order index of the current id.
  size_t position() const { return pos_; }

  /// Current id. Valid until the cursor advances (block-backed spans point
  /// into the scratch buffer of the currently decoded block). Must not be
  /// called when AtEnd(); returns an empty span if the block failed to
  /// decode (status() then carries the error and the cursor reads AtEnd).
  DeweySpan Head() const;

  void Next() {
    ++pos_;
    ++offset_;
  }

  /// Advances to the first id >= `target` in document order (no-op when
  /// already there). Never moves backwards; callers feed ascending targets.
  void SeekLowerBound(DeweySpan target);

  /// Advances to the first id not strictly before the subtree of `prefix`;
  /// returns true iff the new head exists and lies inside that subtree.
  bool SeekToSubtree(DeweySpan prefix);

  /// Appends every remaining id to `out` (block-granular copies) and
  /// leaves the cursor at the end.
  void EmitAll(PackedIds* out);

  /// Appends ids in document order while the head's document component
  /// (first path component) stays below `doc_end`, leaving the cursor on
  /// the first id at or past document `doc_end` (or at the end).
  void EmitWhileDocBelow(uint32_t doc_end, PackedIds* out);

  /// Block addressing for top-k evaluation. Both backends are viewed in
  /// kPostingBlockSize-id blocks — the same fixed blocking the encoder
  /// uses — so indices align entry-for-entry with
  /// PostingList::rank_bounds(). BlockFirst/BlockLast answer from the skip
  /// table (block-backed) or the array (eager); no payload decode.
  size_t block_count() const;
  /// Block holding the current position. Must not be called when AtEnd().
  size_t block_index() const;
  DeweySpan BlockFirst(size_t b) const;
  DeweySpan BlockLast(size_t b) const;

  /// Jumps to the first id of the block after `b` (>= the block holding
  /// the current position) WITHOUT decoding anything in between — the
  /// top-k bound-skip primitive. Past the last block the cursor reads
  /// AtEnd. Never moves backwards.
  void SeekPastBlock(size_t b);

  /// OK unless a lazily decoded block turned out corrupt — the cursor then
  /// reports end-of-list and this carries the decode error.
  Status status() const { return status_; }

 private:
  /// Ensures the block holding global index `pos_` is decoded and
  /// `offset_` points at pos_ within it. Block-backed only. Decode
  /// failure sets status_ and clamps size_ so the cursor reads AtEnd.
  /// (Mutable/const because Head() triggers it lazily.)
  void LoadBlockForPosition() const;

  /// Last block whose first id index is <= `pos` (block-backed only).
  size_t BlockForIndex(size_t pos) const;

  const PackedIds* eager_ = nullptr;  // exactly one backend is set
  const BlockPostingsView* view_ = nullptr;
  mutable size_t size_ = 0;
  size_t pos_ = 0;                   // global id index
  mutable size_t block_ = SIZE_MAX;  // decoded block (SIZE_MAX: none yet)
  mutable size_t offset_ = 0;        // pos_ - begin of decoded block
  mutable PackedIds scratch_;        // decoded ids of block_
  mutable Status status_ = Status::OK();
};

}  // namespace gks

#endif  // GKS_INDEX_POSTING_CURSOR_H_
