#ifndef GKS_INDEX_POSTING_LIST_H_
#define GKS_INDEX_POSTING_LIST_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "dewey/dewey_id.h"

namespace gks {

/// A non-owning view over the components of one Dewey id stored inside a
/// PackedIds container. Valid only while the container is alive and
/// unmodified.
struct DeweySpan {
  const uint32_t* data = nullptr;
  uint32_t size = 0;

  static DeweySpan Of(const DeweyId& id) {
    return {id.components().data(),
            static_cast<uint32_t>(id.components().size())};
  }
  // A span into a temporary would dangle immediately; forbid it.
  static DeweySpan Of(DeweyId&&) = delete;

  DeweyId ToDeweyId() const {
    return DeweyId(std::vector<uint32_t>(data, data + size));
  }

  /// Document-order comparison (ancestor before descendant).
  int Compare(const DeweySpan& other) const;

  /// True if `this` equals `other` or is an ancestor of it.
  bool IsPrefixOf(const DeweySpan& other) const;

  /// Three-way comparison of `this` against the *subtree* rooted at
  /// `prefix`: negative if this sorts before every node in that subtree,
  /// zero if inside it (prefix is self-or-ancestor), positive if after.
  int CompareToSubtree(const DeweySpan& prefix) const;

  bool operator==(const DeweySpan& other) const { return Compare(other) == 0; }
};

/// A flat, cache-friendly sequence of Dewey ids: all components live in one
/// contiguous buffer with an offsets side-array. This is the storage format
/// for posting lists and the attribute directory — per-id heap allocations
/// would dominate memory on multi-million-posting corpora.
class PackedIds {
 public:
  PackedIds() { offsets_.push_back(0); }

  void Add(const DeweyId& id) { Add(DeweySpan::Of(id)); }
  void Add(DeweySpan span);

  /// Pre-sizes the backing arrays for `ids` ids totalling `components`
  /// path components (bulk-merge fast path).
  void Reserve(size_t ids, size_t components) {
    offsets_.reserve(ids + 1);
    components_.reserve(components);
  }

  /// Appends ids [begin, end) of `src` in one block copy — the run-emission
  /// fast path of the k-way merge. `src` must not alias this container.
  void AppendRange(const PackedIds& src, size_t begin, size_t end);

  /// Total path components stored across all ids.
  size_t component_count() const { return components_.size(); }

  size_t size() const { return offsets_.size() - 1; }
  bool empty() const { return size() == 0; }

  DeweySpan At(size_t i) const {
    return {components_.data() + offsets_[i], offsets_[i + 1] - offsets_[i]};
  }
  DeweyId IdAt(size_t i) const { return At(i).ToDeweyId(); }

  /// Index permutation that orders the ids in document order.
  std::vector<uint32_t> SortPermutation() const;

  /// Reorders storage according to `perm` (as produced by SortPermutation).
  void ApplyPermutation(const std::vector<uint32_t>& perm);

  /// First index i with At(i) inside the subtree of `prefix`, assuming the
  /// container is sorted. Together with SubtreeEnd this yields the
  /// contiguous range of all self-or-descendants of `prefix`.
  size_t SubtreeBegin(DeweySpan prefix) const;
  size_t SubtreeEnd(DeweySpan prefix) const;

  /// Galloping (exponential-search) variants for cursor-based scans: the
  /// answer is found in O(log distance) probes from `from` instead of
  /// O(log size) from scratch, so walking a sorted list of ascending
  /// probes costs O(log gap) per step. `from` must be <= the answer
  /// (callers pass their last cursor position); results equal the
  /// from-scratch variants.
  size_t SubtreeBeginFrom(DeweySpan prefix, size_t from) const;
  size_t SubtreeEndFrom(DeweySpan prefix, size_t from) const;

  /// First index i >= from with At(i) >= id in document order (galloping).
  size_t LowerBoundFrom(DeweySpan id, size_t from) const;
  /// First index i >= from with At(i) > id in document order (galloping).
  size_t UpperBoundFrom(DeweySpan id, size_t from) const;

  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, PackedIds* out);

  /// Drops all ids but keeps the backing capacity — scratch-buffer reuse
  /// for block-at-a-time decoding.
  void Clear() {
    components_.clear();
    offsets_.assign(1, 0);
  }

  /// Heap bytes used (for index-size reporting).
  size_t MemoryUsage() const {
    return components_.capacity() * sizeof(uint32_t) +
           offsets_.capacity() * sizeof(uint32_t);
  }

  /// Kernel-layer escape hatch (src/common/simd/kernels.h): direct access
  /// to the flat storage so the vectorized decode/gather kernels can bulk
  /// append without per-id calls. Writers must preserve the layout
  /// invariant: offsets holds size()+1 ascending entries, the last equal
  /// to components.size().
  std::vector<uint32_t>* mutable_raw_components() { return &components_; }
  std::vector<uint32_t>* mutable_raw_offsets() { return &offsets_; }
  const uint32_t* raw_components() const { return components_.data(); }
  const uint32_t* raw_offsets() const { return offsets_.data(); }

 private:
  std::vector<uint32_t> components_;
  std::vector<uint32_t> offsets_;  // size()+1 entries; [i, i+1) delimits id i
};

class BlockPostingsView;  // posting_blocks.h

/// Fixed-point scale of BlockRankBound::weight_scaled: 65536 == weight 1.0.
inline constexpr uint32_t kRankWeightOne = 65536;

/// Per-posting-block upper bound on rank potential (format v2 rank_bounds
/// section): the maximum per-occurrence term weight of any id in the block
/// (fixed-point, ceil-rounded so the stored bound never under-states the
/// true weight) plus the block's depth envelope. A missing section reads
/// as weight 1.0 — the unconditional bound — so bounds are always sound,
/// only sometimes loose.
struct BlockRankBound {
  uint32_t weight_scaled = kRankWeightOne;
  uint32_t min_depth = 0;
  uint32_t max_depth = 0;

  double weight() const {
    return static_cast<double>(weight_scaled) / kRankWeightOne;
  }
};

/// One keyword's inverted list: document-ordered, duplicate-free Dewey ids
/// of the nodes whose directly-contained text (or tag name) matches the
/// keyword. Built in arbitrary order, then finalized once.
///
/// Two storage backends:
///   - eager: ids live in a PackedIds (built lists, v1 loads);
///   - block-backed (format v2): ids stay in an encoded block blob (see
///     posting_blocks.h), only the skip table is parsed up front. The full
///     PackedIds materializes lazily on the first random-access call;
///     sequential consumers should use PostingCursor instead, which decodes
///     block-at-a-time and never materializes the whole list.
///
/// Move-only: the lazy backend owns a once_flag cell.
class PostingList {
 public:
  PostingList();
  ~PostingList();
  PostingList(PostingList&&) noexcept;
  PostingList& operator=(PostingList&&) noexcept;
  PostingList(const PostingList&) = delete;
  PostingList& operator=(const PostingList&) = delete;

  /// Attaches an encoded block-postings blob from the front of `*input`
  /// (format v2). Parses the skip table immediately — O(blocks), validates
  /// structure — and defers payload decode. `owner` keeps the underlying
  /// bytes (an mmap'd file or a pinned buffer) alive for the list's
  /// lifetime; pass nullptr if the caller guarantees it independently.
  static Status FromEncodedBlocks(std::string_view* input,
                                  std::shared_ptr<const void> owner,
                                  PostingList* out);

  /// Non-null iff block-backed; skip-table reads and block decodes are
  /// valid regardless of materialization state.
  const BlockPostingsView* block_view() const;

  /// The materialized id store. Block-backed lists decode all blocks on
  /// first call (thread-safe; concurrent readers see the decode exactly
  /// once). If the payload turns out corrupt the list reads as empty and
  /// materialize_status() carries the error.
  const PackedIds& materialized_ids() const;
  Status materialize_status() const;

  /// True when the ids already live in a PackedIds (eager lists, or
  /// block-backed ones after their first materializing access) — readers
  /// can then take the array path with no decode risk.
  bool materialized() const;

  void Add(const DeweyId& id) { MutableIds()->Add(id); }

  /// Sorts into document order and removes duplicate ids. Idempotent.
  void Finalize();

  /// Id count. Block-backed lists answer from the blob header without
  /// materializing (so e.g. smallest-list selection stays lazy).
  size_t size() const;
  bool empty() const { return size() == 0; }

  /// First/last id of a finalized, non-empty list. Block-backed lists
  /// answer from the skip table without decoding any payload — the query
  /// planner reads document spans from these at plan time.
  DeweySpan first_id() const;
  DeweySpan last_id() const;

  /// Encoded v2 blocks behind this list; 0 for eager storage. A cheap
  /// decode-cost statistic for the query planner.
  size_t encoded_block_count() const;
  DeweySpan At(size_t i) const { return materialized_ids().At(i); }
  DeweyId IdAt(size_t i) const { return materialized_ids().IdAt(i); }

  size_t SubtreeBegin(DeweySpan prefix) const {
    return materialized_ids().SubtreeBegin(prefix);
  }
  size_t SubtreeEnd(DeweySpan prefix) const {
    return materialized_ids().SubtreeEnd(prefix);
  }

  /// Galloping cursor-based variants (see PackedIds).
  size_t LowerBoundFrom(DeweySpan id, size_t from) const {
    return materialized_ids().LowerBoundFrom(id, from);
  }
  size_t UpperBoundFrom(DeweySpan id, size_t from) const {
    return materialized_ids().UpperBoundFrom(id, from);
  }

  /// True if any posting lies in the subtree of `prefix` (sorted lists only).
  bool ContainsInSubtree(DeweySpan prefix) const {
    return SubtreeBegin(prefix) < SubtreeEnd(prefix);
  }

  /// Appends a finalized `tail` whose first id sorts strictly after this
  /// list's last id (the incremental-update case: the tail belongs to a
  /// newer document). InvalidArgument if the order would break.
  Status ExtendWith(const PostingList& tail);

  void EncodeTo(std::string* dst) const { materialized_ids().EncodeTo(dst); }
  static Status DecodeFrom(std::string_view* input, PostingList* out);

  /// Encodes as a block-postings blob (format v2; see posting_blocks.h).
  void EncodeBlocksTo(std::string* dst) const;

  /// Per-block rank bounds (one entry per kPostingBlockSize-id block, the
  /// same fixed blocking both backends use). Empty when the index carries
  /// no rank_bounds section — readers must then assume weight 1.0.
  const std::vector<BlockRankBound>& rank_bounds() const {
    return rank_bounds_;
  }
  void set_rank_bounds(std::vector<BlockRankBound> bounds) {
    rank_bounds_ = std::move(bounds);
  }

  /// Forces a block-backed list into its eager form now and detaches the
  /// encoded blob — the eager deserialization path calls this before the
  /// backing buffer goes away.
  void Materialize() { (void)MutableIds(); }

  size_t MemoryUsage() const;

 private:
  struct BlockBacking;

  /// Materializes (if needed) and detaches the block backing — mutation
  /// invalidates the encoded blob.
  PackedIds* MutableIds();

  mutable PackedIds ids_;
  std::unique_ptr<BlockBacking> backing_;
  // By value (not derived from backing_): bounds must survive
  // Materialize(), which detaches the encoded blob.
  std::vector<BlockRankBound> rank_bounds_;
  bool finalized_ = false;
};

}  // namespace gks

#endif  // GKS_INDEX_POSTING_LIST_H_
