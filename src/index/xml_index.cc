#include "index/xml_index.h"

#include <atomic>

namespace gks {

uint64_t NextIndexEpoch() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace gks
