#include "dewey/dewey_id.h"

#include <algorithm>
#include <ostream>

#include "common/varint.h"

namespace gks {

Result<DeweyId> DeweyId::Parse(std::string_view text) {
  if (!text.empty() && (text.front() == 'd' || text.front() == 'D')) {
    text.remove_prefix(1);
  }
  if (text.empty()) return Status::InvalidArgument("empty Dewey id");
  std::vector<uint32_t> components;
  uint64_t current = 0;
  bool have_digit = false;
  for (char c : text) {
    if (c >= '0' && c <= '9') {
      current = current * 10 + static_cast<uint64_t>(c - '0');
      if (current > UINT32_MAX) {
        return Status::InvalidArgument("Dewey component overflow");
      }
      have_digit = true;
    } else if (c == '.') {
      if (!have_digit) {
        return Status::InvalidArgument("empty Dewey component");
      }
      components.push_back(static_cast<uint32_t>(current));
      current = 0;
      have_digit = false;
    } else {
      return Status::InvalidArgument(std::string("bad Dewey character: ") + c);
    }
  }
  if (!have_digit) return Status::InvalidArgument("trailing dot in Dewey id");
  components.push_back(static_cast<uint32_t>(current));
  return DeweyId(std::move(components));
}

DeweyId DeweyId::Child(uint32_t ordinal) const {
  std::vector<uint32_t> components = components_;
  components.push_back(ordinal);
  return DeweyId(std::move(components));
}

DeweyId DeweyId::Parent() const {
  if (components_.empty()) return DeweyId();
  std::vector<uint32_t> components(components_.begin(), components_.end() - 1);
  return DeweyId(std::move(components));
}

bool DeweyId::IsAncestorOf(const DeweyId& other) const {
  if (components_.size() >= other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

bool DeweyId::IsSelfOrAncestorOf(const DeweyId& other) const {
  if (components_.size() > other.components_.size()) return false;
  return std::equal(components_.begin(), components_.end(),
                    other.components_.begin());
}

DeweyId DeweyId::CommonPrefix(const DeweyId& other) const {
  size_t limit = std::min(components_.size(), other.components_.size());
  size_t i = 0;
  while (i < limit && components_[i] == other.components_[i]) ++i;
  std::vector<uint32_t> components(components_.begin(),
                                   components_.begin() + i);
  return DeweyId(std::move(components));
}

int DeweyId::Compare(const DeweyId& other) const {
  size_t limit = std::min(components_.size(), other.components_.size());
  for (size_t i = 0; i < limit; ++i) {
    if (components_[i] != other.components_[i]) {
      return components_[i] < other.components_[i] ? -1 : 1;
    }
  }
  if (components_.size() == other.components_.size()) return 0;
  return components_.size() < other.components_.size() ? -1 : 1;
}

std::string DeweyId::ToString() const {
  if (components_.empty()) return "(empty)";
  std::string out = "d";
  for (size_t i = 0; i < components_.size(); ++i) {
    if (i > 0) out.push_back('.');
    out += std::to_string(components_[i]);
  }
  return out;
}

void DeweyId::EncodeTo(std::string* dst) const {
  PutVarint32(dst, static_cast<uint32_t>(components_.size()));
  for (uint32_t c : components_) PutVarint32(dst, c);
}

Status DeweyId::DecodeFrom(std::string_view* input, DeweyId* out) {
  uint32_t count = 0;
  GKS_RETURN_IF_ERROR(GetVarint32(input, &count));
  if (count > 1u << 20) return Status::Corruption("implausible Dewey length");
  std::vector<uint32_t> components(count);
  for (uint32_t i = 0; i < count; ++i) {
    GKS_RETURN_IF_ERROR(GetVarint32(input, &components[i]));
  }
  *out = DeweyId(std::move(components));
  return Status::OK();
}

std::ostream& operator<<(std::ostream& os, const DeweyId& id) {
  return os << id.ToString();
}

}  // namespace gks
