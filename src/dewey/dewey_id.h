#ifndef GKS_DEWEY_DEWEY_ID_H_
#define GKS_DEWEY_DEWEY_ID_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "common/status.h"

namespace gks {

/// A Dewey id labels an XML node with its path of child ordinals from the
/// document root (Tatarinov et al., SIGMOD 2002). Per the paper (Sec. 2.4)
/// the *first* component is the document id, so search spans multiple files
/// seamlessly: a node printed as "d3.0.1.2" is document 3, path 0.1.2.
///
/// Lexicographic comparison of component vectors equals pre-order document
/// order, with an ancestor sorting immediately before its descendants.
class DeweyId {
 public:
  DeweyId() = default;
  explicit DeweyId(std::vector<uint32_t> components)
      : components_(std::move(components)) {}

  /// Root id of document `doc_id` (a single component).
  static DeweyId DocumentRoot(uint32_t doc_id) { return DeweyId({doc_id}); }

  /// Parses "3.0.1.2" (plain dotted numbers; a leading "d" is accepted).
  static Result<DeweyId> Parse(std::string_view text);

  const std::vector<uint32_t>& components() const { return components_; }
  bool empty() const { return components_.empty(); }

  /// Number of edges below the document root: the document root has
  /// depth 0, its children depth 1, etc.
  size_t depth() const { return components_.empty() ? 0 : components_.size() - 1; }

  uint32_t doc_id() const { return components_.empty() ? 0 : components_[0]; }

  /// Child with ordinal `ordinal` under this node.
  DeweyId Child(uint32_t ordinal) const;

  /// Parent id; the document root's parent is the empty id.
  DeweyId Parent() const;

  /// True if `this` is a strict ancestor of `other` (v <_a u in the paper).
  bool IsAncestorOf(const DeweyId& other) const;

  /// True if `this` is `other` or a strict ancestor of it (v <=_a u).
  bool IsSelfOrAncestorOf(const DeweyId& other) const;

  /// Longest common prefix with `other` — the lowest common ancestor of the
  /// two nodes when both belong to the same document (Lemma 6 exploits that
  /// for a sorted block, LCP(first, last) is the block's LCP).
  DeweyId CommonPrefix(const DeweyId& other) const;

  /// Document-order comparison: negative / zero / positive like strcmp.
  /// An ancestor compares less than any of its descendants.
  int Compare(const DeweyId& other) const;

  /// "d3.0.1.2" — document id prefixed with 'd' for readability.
  std::string ToString() const;

  /// Appends a varint encoding (component count, then components) to `dst`;
  /// the inverse returns Corruption on malformed input.
  void EncodeTo(std::string* dst) const;
  static Status DecodeFrom(std::string_view* input, DeweyId* out);

  bool operator==(const DeweyId& other) const {
    return components_ == other.components_;
  }
  bool operator!=(const DeweyId& other) const { return !(*this == other); }
  bool operator<(const DeweyId& other) const { return Compare(other) < 0; }
  bool operator>(const DeweyId& other) const { return Compare(other) > 0; }
  bool operator<=(const DeweyId& other) const { return Compare(other) <= 0; }

 private:
  std::vector<uint32_t> components_;
};

/// Hash functor so DeweyId can key unordered_map (entityHash/elementHash).
struct DeweyIdHash {
  size_t operator()(const DeweyId& id) const {
    // FNV-1a over the component words.
    uint64_t h = 1469598103934665603ull;
    for (uint32_t c : id.components()) {
      h ^= c;
      h *= 1099511628211ull;
    }
    return static_cast<size_t>(h);
  }
};

std::ostream& operator<<(std::ostream& os, const DeweyId& id);

}  // namespace gks

#endif  // GKS_DEWEY_DEWEY_ID_H_
