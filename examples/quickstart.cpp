// Quickstart: index an in-memory XML document, run a GKS query, print the
// ranked nodes, the DI keywords and the refinement suggestions.
//
//   $ ./examples/quickstart
//
// See examples/university.cpp and examples/dblp_search.cpp for larger
// walk-throughs.

#include <cstdio>

#include "core/searcher.h"
#include "index/index_builder.h"

namespace {

constexpr const char* kCatalogXml = R"(<catalog>
  <book genre="databases">
    <title>Readings in Database Systems</title>
    <author>Michael Stonebraker</author>
    <author>Joseph Hellerstein</author>
    <year>2005</year>
  </book>
  <book genre="databases">
    <title>Transaction Processing</title>
    <author>Jim Gray</author>
    <author>Andreas Reuter</author>
    <year>1992</year>
  </book>
  <book genre="systems">
    <title>The Art of Computer Systems Performance Analysis</title>
    <author>Raj Jain</author>
    <year>1991</year>
  </book>
</catalog>)";

}  // namespace

int main() {
  // 1. Build the index (single streaming pass; Sec. 2.4 of the paper).
  gks::IndexBuilder builder;
  gks::Status status = builder.AddDocument(kCatalogXml, "catalog.xml");
  if (!status.ok()) {
    std::fprintf(stderr, "index error: %s\n", status.ToString().c_str());
    return 1;
  }
  gks::Result<gks::XmlIndex> index = std::move(builder).Finalize();
  if (!index.ok()) {
    std::fprintf(stderr, "finalize error: %s\n",
                 index.status().ToString().c_str());
    return 1;
  }

  // 2. Search: any node whose subtree holds >= s distinct query keywords.
  // "gray" and "stonebraker" never share a book, so classic LCA search
  // would degrade to the catalog root; GKS returns both books, ranked.
  gks::GksSearcher searcher(&*index);
  gks::SearchOptions options;
  options.s = 1;
  gks::Result<gks::SearchResponse> response =
      searcher.Search("stonebraker gray databases", options);
  if (!response.ok()) {
    std::fprintf(stderr, "search error: %s\n",
                 response.status().ToString().c_str());
    return 1;
  }

  std::printf("== Ranked response (s=%u, |S_L|=%zu) ==\n",
              response->effective_s, response->merged_list_size);
  for (const gks::GksNode& node : response->nodes) {
    std::printf("  %s\n", gks::DescribeNode(*index, node).c_str());
  }

  std::printf("\n== Deeper analytical insights (DI) ==\n");
  for (const gks::DiKeyword& di : response->insights) {
    std::printf("  %-40s weight=%.3f\n", di.ToString().c_str(), di.weight);
  }

  std::printf("\n== Refinement suggestions ==\n");
  for (const gks::RefinementSuggestion& suggestion : response->refinements) {
    std::printf("  {");
    for (size_t i = 0; i < suggestion.keywords.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", suggestion.keywords[i].c_str());
    }
    std::printf("}  (%s)\n", suggestion.rationale.c_str());
  }
  return 0;
}
