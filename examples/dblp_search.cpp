// Example 2 of the paper on a synthetic DBLP: a four-author query where no
// single article contains every author. LCA techniques would return the
// DBLP root; GKS returns a ranked list of articles by author subsets, plus
// DI (relevant years/venues/co-authors).

#include <cstdio>

#include "common/string_util.h"
#include "common/timer.h"
#include "core/searcher.h"
#include "data/dblp_gen.h"
#include "index/index_builder.h"

int main(int argc, char** argv) {
  size_t articles = 20000;
  if (argc > 1) articles = static_cast<size_t>(std::atol(argv[1]));

  std::printf("Generating synthetic DBLP with %zu entries...\n", articles);
  gks::data::DblpOptions gen;
  gen.articles = articles;
  std::string xml = gks::data::GenerateDblp(gen);
  std::printf("  %s of XML\n", gks::HumanBytes(xml.size()).c_str());

  gks::WallTimer timer;
  gks::IndexBuilder builder;
  if (gks::Status status = builder.AddDocument(xml, "dblp.xml");
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  gks::Result<gks::XmlIndex> index = std::move(builder).Finalize();
  if (!index.ok()) return 1;
  std::printf("  indexed in %.2fs (%zu terms, %llu postings)\n\n",
              timer.ElapsedSeconds(), index->inverted.term_count(),
              (unsigned long long)index->inverted.posting_count());

  gks::GksSearcher searcher(&*index);
  const char* query =
      "\"Peter Buneman\" \"Wenfei Fan\" \"Scott Weinstein\" "
      "\"Prithviraj Banerjee\"";
  std::printf("Query Qd = %s, s=1\n", query);

  timer.Reset();
  gks::SearchOptions options;
  options.s = 1;
  options.max_results = 10;
  options.di_top_m = 6;
  gks::Result<gks::SearchResponse> response = searcher.Search(query, options);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }
  std::printf("  response in %.2fms: |S_L|=%zu, %zu LCE nodes\n\n",
              timer.ElapsedMillis(), response->merged_list_size,
              response->lce_count);

  std::printf("Top articles (more shared authors rank first; among equals,\n"
              "fewer co-authors rank first — Sec. 7.6):\n");
  for (const gks::GksNode& node : response->nodes) {
    std::printf("  %s\n", gks::DescribeNode(*index, node, 4).c_str());
  }

  std::printf("\nDI in the context of Qd:\n");
  for (const gks::DiKeyword& di : response->insights) {
    std::printf("  %-50s weight=%.2f support=%u\n", di.ToString().c_str(),
                di.weight, di.support);
  }
  return 0;
}
