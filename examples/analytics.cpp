// Analytics over raw XML (the paper's concluding research direction): run
// a GKS query over a synthetic DBLP, then compute facets, aggregates and a
// histogram over the matching articles — no schema knowledge required.

#include <cstdio>
#include <string>

#include "core/analytics.h"
#include "core/searcher.h"
#include "data/dblp_gen.h"
#include "index/index_builder.h"
#include "schema/schema_summary.h"

int main() {
  gks::data::DblpOptions gen;
  gen.articles = 10000;
  gks::IndexBuilder builder;
  if (!builder.AddDocument(gks::data::GenerateDblp(gen), "dblp.xml").ok()) {
    return 1;
  }
  gks::Result<gks::XmlIndex> index = std::move(builder).Finalize();
  if (!index.ok()) return 1;

  // Schema-aware categorization (paper future work): single-author entries
  // are promoted to entities by the majority category of their path, so
  // analytics cover *every* matching article.
  gks::SchemaSummary summary = gks::SchemaSummary::Build(*index);
  gks::SchemaReconciliation stats =
      gks::ApplySchemaCategorization(summary, &*index);
  std::printf("schema reconciliation: +%llu entity nodes\n\n",
              (unsigned long long)stats.promoted_entities);

  gks::GksSearcher searcher(&*index);
  gks::SearchOptions options;
  options.s = 1;
  options.discover_di = false;
  options.suggest_refinements = false;
  const char* query = "\"Peter Buneman\" \"Wenfei Fan\"";
  gks::Result<gks::SearchResponse> response = searcher.Search(query, options);
  if (!response.ok()) return 1;
  std::printf("query %s -> %zu articles\n\n", query, response->nodes.size());

  std::printf("facets over the matching articles:\n");
  gks::FacetOptions facet_options;
  facet_options.max_facets = 3;
  facet_options.max_buckets_per_facet = 4;
  for (const gks::Facet& facet :
       ComputeFacets(*index, response->nodes, facet_options)) {
    std::printf("  %s:\n", facet.tag.c_str());
    for (const gks::FacetBucket& bucket : facet.buckets) {
      std::printf("    %-28s %5u\n", bucket.value.c_str(), bucket.count);
    }
  }

  gks::Result<gks::NumericSummary> years =
      AggregateNumeric(*index, response->nodes, "year");
  if (years.ok()) {
    std::printf("\nyear: min=%.0f max=%.0f mean=%.1f over %llu articles\n",
                years->min, years->max, years->mean,
                (unsigned long long)years->count);
  }

  gks::Result<std::vector<gks::HistogramBucket>> histogram =
      NumericHistogram(*index, response->nodes, "year", 6);
  if (histogram.ok()) {
    std::printf("\npublication-year histogram:\n");
    for (const gks::HistogramBucket& bucket : *histogram) {
      std::printf("  [%.0f, %.0f)  %-4llu %s\n", bucket.lo, bucket.hi,
                  (unsigned long long)bucket.count,
                  std::string(static_cast<size_t>(bucket.count) / 8, '#')
                      .c_str());
    }
  }
  return 0;
}
