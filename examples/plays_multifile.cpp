// Multi-file indexing + index persistence: the Shakespeare-plays corpus is
// "distributed over multiple files" (Sec. 7). This example writes the
// plays to disk, indexes them file by file, saves the index, reloads it,
// and queries across documents.

#include <cstdio>
#include <filesystem>

#include "core/searcher.h"
#include "data/plays_gen.h"
#include "index/index_builder.h"
#include "index/serialization.h"
#include "xml/sax_parser.h"

int main() {
  namespace fs = std::filesystem;
  fs::path dir = fs::temp_directory_path() / "gks_plays";
  fs::create_directories(dir);

  gks::data::PlaysOptions options;
  options.plays = 6;
  gks::IndexBuilder builder;
  for (const auto& [name, xml] : gks::data::GeneratePlays(options)) {
    fs::path path = dir / name;
    if (!gks::xml::WriteStringToFile(path.string(), xml).ok()) return 1;
    if (gks::Status status = builder.AddFile(path.string()); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  gks::Result<gks::XmlIndex> built = std::move(builder).Finalize();
  if (!built.ok()) return 1;

  // Persist and reload — index preparation is a one-time activity.
  fs::path index_path = dir / "plays.gksidx";
  if (!gks::SaveIndex(*built, index_path.string()).ok()) return 1;
  gks::Result<gks::XmlIndex> index = gks::LoadIndex(index_path.string());
  if (!index.ok()) return 1;
  std::printf("Loaded index over %zu plays from %s\n\n",
              index->catalog.document_count(), index_path.c_str());

  gks::GksSearcher searcher(&*index);
  gks::SearchOptions search;
  search.s = 2;
  search.max_results = 8;
  gks::Result<gks::SearchResponse> response =
      searcher.Search("HAMLET poison crown", search);
  if (!response.ok()) return 1;

  std::printf("Speeches/scenes matching {HAMLET, poison, crown}, s=2:\n");
  for (const gks::GksNode& node : response->nodes) {
    std::printf("  [%s] %s\n",
                index->catalog.document(node.id.doc_id()).name.c_str(),
                gks::DescribeNode(*index, node, 2).c_str());
  }
  return 0;
}
