// Walk-through of the paper's running example (Figure 2(a), Examples 3-4):
// an "imperfect" query over a university document, the LCE nodes GKS
// returns, the DI it mines, and query refinement.

#include <cstdio>

#include "core/searcher.h"
#include "data/figures.h"
#include "index/index_builder.h"

namespace {

void PrintResponse(const gks::XmlIndex& index,
                   const gks::SearchResponse& response) {
  for (const gks::GksNode& node : response.nodes) {
    std::printf("  %s\n", gks::DescribeNode(index, node).c_str());
  }
  if (!response.insights.empty()) {
    std::printf("  DI:");
    for (const gks::DiKeyword& di : response.insights) {
      std::printf(" %s", di.ToString().c_str());
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  gks::IndexBuilder builder;
  if (gks::Status status =
          builder.AddDocument(gks::data::Figure2aXml(), "university.xml");
      !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  gks::Result<gks::XmlIndex> index = std::move(builder).Finalize();
  if (!index.ok()) return 1;
  gks::GksSearcher searcher(&*index);

  std::printf("Node categorization (Table 5 style):\n");
  const auto& counts = index->nodes.counts();
  std::printf("  AN=%llu EN=%llu RN=%llu CN=%llu total=%llu\n\n",
              (unsigned long long)counts.attribute,
              (unsigned long long)counts.entity,
              (unsigned long long)counts.repeating,
              (unsigned long long)counts.connecting,
              (unsigned long long)counts.total);

  // Example 3: the imperfect query Q4. harry matches nothing; GKS still
  // returns every course touching the named students, as LCE nodes.
  std::printf("Example 3 — Q4 = {student, karen, mike, john, harry}, s=2:\n");
  gks::SearchOptions q4;
  q4.s = 2;
  auto response = searcher.Search("student karen mike john harry", q4);
  if (!response.ok()) return 1;
  PrintResponse(*index, *response);

  // Example 4: the perfect query Q5 with s=|Q| — GKS lifts the bare
  // <Students> LCA to the <Course> entity, exposing 'Data Mining'.
  std::printf("\nExample 4 — Q5 = {student, karen, mike, john}, s=|Q|:\n");
  gks::SearchOptions q5;
  q5.s = 0;
  response = searcher.Search("student karen mike john", q5);
  if (!response.ok()) return 1;
  PrintResponse(*index, *response);

  // Refinement: the suggestions encode which student subsets actually
  // share a course.
  std::printf("\nRefinements for Q4:\n");
  response = searcher.Search("student karen mike john harry", q4);
  if (!response.ok()) return 1;
  for (const gks::RefinementSuggestion& s : response->refinements) {
    std::printf("  {");
    for (size_t i = 0; i < s.keywords.size(); ++i) {
      std::printf("%s%s", i ? ", " : "", s.keywords[i].c_str());
    }
    std::printf("}  score=%.2f  (%s)\n", s.score, s.rationale.c_str());
  }

  // Recursive DI (Sec. 2.3): feed the discovered course names back in.
  std::printf("\nRecursive DI from {karen, mike}:\n");
  gks::Result<gks::Query> query = gks::Query::Parse("karen mike");
  if (!query.ok()) return 1;
  gks::SearchOptions options;
  options.s = 1;
  auto rounds = searcher.DiscoverRecursiveDi(*query, options, 2);
  if (!rounds.ok()) return 1;
  for (size_t round = 0; round < rounds->size(); ++round) {
    std::printf("  round %zu:", round);
    for (const gks::DiKeyword& di : (*rounds)[round]) {
      std::printf(" %s", di.ToString().c_str());
    }
    std::printf("\n");
  }
  return 0;
}
