// Sec. 7.6 "hybrid queries": DBLP-like and SIGMOD-Record-like corpora
// merged into one index; a single query whose keyword subsets target two
// different entity types. GKS returns both node types, correctly ranked,
// without the user saying which schema they meant.

#include <cstdio>
#include <set>

#include "core/searcher.h"
#include "data/dblp_gen.h"
#include "data/sigmod_gen.h"
#include "index/index_builder.h"

int main() {
  gks::IndexBuilder builder;
  gks::data::DblpOptions dblp;
  dblp.articles = 8000;
  if (!builder.AddDocument(gks::data::GenerateDblp(dblp), "dblp.xml").ok()) {
    return 1;
  }
  gks::data::SigmodOptions sigmod;
  sigmod.issues = 80;
  if (!builder
           .AddDocument(gks::data::GenerateSigmodRecord(sigmod), "sigmod.xml")
           .ok()) {
    return 1;
  }
  gks::Result<gks::XmlIndex> index = std::move(builder).Finalize();
  if (!index.ok()) return 1;

  gks::GksSearcher searcher(&*index);
  // Two author pairs; each pair co-occurs somewhere, and matches from both
  // corpora come back in one ranked list.
  const char* query = "\"Peter Buneman\" \"Wenfei Fan\" "
                      "\"Scott Weinstein\" \"Prithviraj Banerjee\"";
  std::printf("Hybrid query: %s, s=2\n\n", query);

  gks::SearchOptions options;
  options.s = 2;
  options.max_results = 12;
  gks::Result<gks::SearchResponse> response = searcher.Search(query, options);
  if (!response.ok()) {
    std::fprintf(stderr, "%s\n", response.status().ToString().c_str());
    return 1;
  }

  std::set<uint32_t> docs;
  for (const gks::GksNode& node : response->nodes) {
    docs.insert(node.id.doc_id());
    std::printf("  [%s] %s\n",
                index->catalog.document(node.id.doc_id()).name.c_str(),
                gks::DescribeNode(*index, node, 4).c_str());
  }
  std::printf("\nDistinct corpora in the response: %zu\n", docs.size());
  return 0;
}
